"""Tests for the Fourier and DataCube (BMAX) strategies."""

import numpy as np
import pytest

from repro import expected_workload_error
from repro.domain import Domain
from repro.exceptions import StrategyError
from repro.strategies import (
    datacube_strategy,
    fourier_basis,
    fourier_strategy,
    full_fourier_matrix,
    identity_strategy,
    select_cuboids,
)
from repro.workloads import kway_marginals, marginal_attribute_sets


@pytest.fixture
def domain() -> Domain:
    return Domain([4, 4, 2])


class TestFourierBasis:
    def test_orthonormal(self):
        basis = fourier_basis(6)
        np.testing.assert_allclose(basis @ basis.T, np.eye(6), atol=1e-10)

    def test_first_vector_constant(self):
        basis = fourier_basis(5)
        np.testing.assert_allclose(basis[0], np.full(5, 1 / np.sqrt(5)))

    def test_full_matrix_orthonormal(self, domain):
        full = full_fourier_matrix(domain)
        np.testing.assert_allclose(full @ full.T, np.eye(domain.size), atol=1e-9)

    def test_bad_size(self):
        with pytest.raises(StrategyError):
            fourier_basis(0)


class TestFourierStrategy:
    def test_supports_marginal_workload(self, domain):
        workload = kway_marginals(domain, 2)
        strategy = fourier_strategy(domain, 2)
        assert strategy.supports(workload.gram)

    def test_smaller_than_full_basis(self, domain):
        restricted = fourier_strategy(domain, 1)
        assert restricted.query_count < domain.size

    def test_row_count_for_one_way(self, domain):
        # 1-way marginals need coefficients with support of size <= 1:
        # 1 constant + sum (d_i - 1) others.
        strategy = fourier_strategy(domain, 1)
        assert strategy.query_count == 1 + sum(d - 1 for d in domain.shape)

    def test_sensitivity_no_larger_than_full_basis(self, domain):
        full = fourier_strategy(domain, None)
        restricted = fourier_strategy(domain, 1)
        assert restricted.sensitivity_l2 <= full.sensitivity_l2 + 1e-12

    def test_explicit_marginal_sets(self, domain):
        strategy = fourier_strategy(domain, [(0, 1)])
        workload = kway_marginals(Domain([4, 4, 2]), 2)
        # Supports the (0,1) marginal but not necessarily the others.
        marginal = domain.marginalization_matrix([0, 1])
        from repro.core.workload import Workload

        assert strategy.supports(Workload(marginal).gram)

    def test_better_than_identity_for_low_order_marginals(self, privacy):
        domain = Domain([8, 8, 8])
        workload = kway_marginals(domain, 1)
        fourier_error = expected_workload_error(workload, fourier_strategy(domain, 1), privacy)
        identity_error = expected_workload_error(workload, identity_strategy(domain), privacy)
        assert fourier_error < identity_error


class TestDataCube:
    def test_select_cuboids_covers_workload(self, domain):
        targets = marginal_attribute_sets(domain, 2)
        chosen = select_cuboids(domain, targets)
        for target in targets:
            assert any(set(target) <= set(cuboid) for cuboid in chosen)

    def test_single_marginal_materialises_itself(self, domain):
        chosen = select_cuboids(domain, [(0, 1)])
        assert chosen == [(0, 1)]

    def test_strategy_supports_marginal_workload(self, domain):
        workload = kway_marginals(domain, 2)
        strategy = datacube_strategy(domain, marginal_attribute_sets(domain, 2))
        assert strategy.supports(workload.gram)

    def test_strategy_rows_are_marginal_queries(self, domain):
        strategy = datacube_strategy(domain, [(0,)])
        assert set(np.unique(strategy.matrix)).issubset({0.0, 1.0})

    def test_empty_marginal_sets_rejected(self, domain):
        with pytest.raises(StrategyError):
            datacube_strategy(domain, [])

    def test_competitive_for_marginals(self, privacy):
        domain = Domain([8, 8, 4])
        workload = kway_marginals(domain, 2)
        datacube_error = expected_workload_error(
            workload, datacube_strategy(domain, marginal_attribute_sets(domain, 2)), privacy
        )
        identity_error = expected_workload_error(workload, identity_strategy(domain), privacy)
        assert datacube_error < identity_error
