"""End-to-end integration: schema -> data -> workload -> eigen design -> private answers."""

import numpy as np
import pytest

from repro import MatrixMechanism, PrivacyParams, eigen_design, expected_workload_error
from repro.datasets import census_like
from repro.domain import CategoricalAttribute, NumericAttribute, Schema
from repro.evaluation import relative_error
from repro.mechanisms import PrivacyAccountant
from repro.strategies import wavelet_strategy
from repro.workloads import (
    combine_workloads,
    kway_marginals,
    random_range_queries,
    workload_from_predicates,
)
from repro.domain import AttributeRange


class TestSchemaToPrivateAnswers:
    def test_full_pipeline_from_records(self, rng):
        schema = Schema(
            [
                CategoricalAttribute("gender", ["M", "F"]),
                NumericAttribute("gpa", [1.0, 2.0, 3.0, 3.5, 4.0]),
            ]
        )
        records = [
            {"gender": rng.choice(["M", "F"]), "gpa": float(rng.uniform(1.0, 3.99))}
            for _ in range(500)
        ]
        data = schema.data_vector(records)
        assert data.sum() == 500

        domain = schema.domain
        workload = workload_from_predicates(
            domain,
            [
                AttributeRange("gender", 0, 0),
                AttributeRange("gender", 1, 1),
                AttributeRange("gpa", 2, 3),
                AttributeRange("gender", 0, 0) & AttributeRange("gpa", 0, 1),
            ],
        )
        privacy = PrivacyParams(1.0, 1e-5)
        design = eigen_design(workload)
        mechanism = MatrixMechanism(design.strategy, privacy)
        result = mechanism.run(workload, data, random_state=rng)

        true = workload.answer(data)
        expected_rmse = mechanism.expected_error(workload)
        # A single run should land within a few expected standard deviations.
        assert np.max(np.abs(result.answers - true)) < 8 * expected_rmse
        assert result.estimate.shape == (domain.size,)

    def test_multi_user_workload_combination(self, privacy, rng):
        # Two analysts submit different workloads; the combined workload gets
        # one adapted strategy and one privacy spend.
        dataset = census_like(total=20_000, random_state=0)
        user_a = kway_marginals(dataset.domain, 1)
        user_b = random_range_queries(dataset.domain, 50, random_state=3)
        combined = combine_workloads([user_a, user_b], name="two-users")

        accountant = PrivacyAccountant(PrivacyParams(1.0, 1e-4))
        spend = accountant.spend(PrivacyParams(0.5, 1e-4), label="batch release")

        design = eigen_design(combined)
        mechanism = MatrixMechanism(design.strategy, spend)
        answers = mechanism.answer(combined, dataset.data, random_state=rng)
        assert answers.shape == (combined.query_count,)
        assert accountant.remaining.epsilon == pytest.approx(0.5)

    def test_adaptive_strategy_improves_relative_error(self, rng):
        # The eigen strategy on the normalised workload should not lose to the
        # generic wavelet strategy on a skewed real-ish dataset.
        dataset = census_like(total=100_000, random_state=1)
        workload = random_range_queries(dataset.domain, 80, random_state=7)
        privacy = PrivacyParams(0.5, 1e-4)

        eigen_strategy = eigen_design(workload.normalize_rows()).strategy
        wavelet = wavelet_strategy(dataset.domain)
        eigen_result = relative_error(
            workload, eigen_strategy, dataset, privacy, trials=6, random_state=11
        )
        wavelet_result = relative_error(
            workload, wavelet, dataset, privacy, trials=6, random_state=11
        )
        assert eigen_result.mean_relative_error < wavelet_result.mean_relative_error * 1.05

    def test_expected_error_is_data_independent(self, privacy):
        workload = kway_marginals([4, 4, 2], 2)
        strategy = eigen_design(workload).strategy
        error = expected_workload_error(workload, strategy, privacy)
        # Recomputing with any dataset attached changes nothing (Prop. 4).
        assert error == expected_workload_error(workload, strategy, privacy)
