"""The documentation stays executable and internally linked.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``): every
``>>>`` code block in ``docs/*.md`` must execute, and every relative
markdown link in README/ROADMAP/docs must resolve — so the architecture and
performance documents cannot silently drift from the code they describe.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location("check_docs", ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_docs_exist_and_are_linked():
    assert (ROOT / "docs" / "architecture.md").exists()
    assert (ROOT / "docs" / "performance.md").exists()
    assert (ROOT / "docs" / "linting.md").exists()
    assert check_docs.DOC_FILES, "docs/*.md not discovered"


def test_docs_code_blocks_execute():
    assert check_docs.run_doctests() == 0


def test_internal_links_resolve():
    assert check_docs.check_links() == []


def test_lock_table_matches_the_manifest():
    assert check_docs.check_lock_table() == []
