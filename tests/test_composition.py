"""Tests for repro.mechanisms.composition (basic / advanced / zCDP accounting)."""

import math

import pytest

from repro import PrivacyParams
from repro.exceptions import PrivacyError
from repro.mechanisms import (
    CompositionAccountant,
    advanced_composition,
    approx_dp_to_zcdp,
    basic_composition,
    gaussian_zcdp,
    zcdp_noise_scale,
    zcdp_to_approx_dp,
)


class TestBasicComposition:
    def test_epsilons_and_deltas_add(self):
        combined = basic_composition([PrivacyParams(0.3, 1e-5), PrivacyParams(0.2, 2e-5)])
        assert combined.epsilon == pytest.approx(0.5)
        assert combined.delta == pytest.approx(3e-5)

    def test_single_guarantee_unchanged(self):
        combined = basic_composition([PrivacyParams(0.7, 1e-6)])
        assert combined.epsilon == pytest.approx(0.7)

    def test_requires_at_least_one(self):
        with pytest.raises(PrivacyError):
            basic_composition([])

    def test_delta_capped_below_one(self):
        combined = basic_composition([PrivacyParams(1.0, 0.6), PrivacyParams(1.0, 0.6)])
        assert combined.delta < 1.0


class TestAdvancedComposition:
    def test_beats_basic_for_many_small_uses(self):
        per_query = PrivacyParams(0.01, 1e-7)
        uses = 500
        advanced = advanced_composition(per_query, uses, delta_slack=1e-6)
        basic = basic_composition([per_query] * uses)
        assert advanced.epsilon < basic.epsilon

    def test_single_use_close_to_original(self):
        per_query = PrivacyParams(0.1, 1e-6)
        composed = advanced_composition(per_query, 1, delta_slack=1e-9)
        # One use still pays the sqrt(2 ln(1/delta')) overhead but stays finite.
        assert composed.epsilon > per_query.epsilon
        assert composed.delta == pytest.approx(per_query.delta + 1e-9)

    def test_epsilon_grows_sublinearly(self):
        per_query = PrivacyParams(0.01, 0.0)
        few = advanced_composition(per_query, 100).epsilon
        many = advanced_composition(per_query, 400).epsilon
        assert many < 4 * few

    def test_rejects_zero_uses(self):
        with pytest.raises(PrivacyError):
            advanced_composition(PrivacyParams(0.1, 1e-6), 0)

    def test_rejects_bad_slack(self):
        with pytest.raises(PrivacyError):
            advanced_composition(PrivacyParams(0.1, 1e-6), 5, delta_slack=0.0)


class TestZcdp:
    def test_gaussian_rho_formula(self):
        assert gaussian_zcdp(2.0, 1.0) == pytest.approx(1.0 / 8.0)
        assert gaussian_zcdp(1.0, 3.0) == pytest.approx(4.5)

    def test_noise_scale_inverts_rho(self):
        rho = 0.37
        sigma = zcdp_noise_scale(rho, 2.0)
        assert gaussian_zcdp(sigma, 2.0) == pytest.approx(rho)

    def test_conversion_round_trip_is_conservative(self):
        """(eps, delta) -> rho -> (eps', delta) never reports a smaller epsilon than rho alone implies."""
        privacy = PrivacyParams(0.5, 1e-4)
        rho = approx_dp_to_zcdp(privacy)
        converted = zcdp_to_approx_dp(rho, privacy.delta)
        assert converted.epsilon > 0
        assert converted.delta == privacy.delta

    def test_zcdp_to_dp_formula(self):
        rho, delta = 0.1, 1e-6
        expected = rho + 2 * math.sqrt(rho * math.log(1 / delta))
        assert zcdp_to_approx_dp(rho, delta).epsilon == pytest.approx(expected)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(PrivacyError):
            gaussian_zcdp(0.0)
        with pytest.raises(PrivacyError):
            zcdp_noise_scale(0.0)
        with pytest.raises(PrivacyError):
            zcdp_to_approx_dp(0.1, 0.0)
        with pytest.raises(PrivacyError):
            approx_dp_to_zcdp(PrivacyParams(0.5, 0.0))


class TestCompositionAccountant:
    def test_zcdp_adds_across_releases(self):
        accountant = CompositionAccountant(target_delta=1e-6)
        accountant.record_gaussian(noise_scale=2.0, l2_sensitivity=1.0)
        accountant.record_gaussian(noise_scale=2.0, l2_sensitivity=1.0)
        assert accountant.zcdp() == pytest.approx(2 * gaussian_zcdp(2.0, 1.0))
        assert accountant.release_count == 2

    def test_zcdp_accounting_beats_basic_for_repeated_releases(self):
        accountant = CompositionAccountant(target_delta=1e-6)
        for _ in range(20):
            accountant.record(PrivacyParams(0.1, 1e-6))
        assert accountant.as_approx_dp().epsilon < accountant.basic().epsilon

    def test_tightest_never_exceeds_basic(self):
        accountant = CompositionAccountant(target_delta=1e-6)
        for _ in range(5):
            accountant.record(PrivacyParams(0.2, 1e-5))
        assert accountant.tightest().epsilon <= accountant.basic().epsilon + 1e-12

    def test_empty_accountant_raises(self):
        accountant = CompositionAccountant()
        with pytest.raises(PrivacyError):
            accountant.basic()
        with pytest.raises(PrivacyError):
            accountant.as_approx_dp()

    def test_rejects_bad_target_delta(self):
        with pytest.raises(PrivacyError):
            CompositionAccountant(target_delta=0.0)

    def test_matches_mechanism_noise_scale(self):
        """Recording via (eps, delta) or via the implied sigma gives the same rho."""
        privacy = PrivacyParams(0.5, 1e-4)
        sigma = privacy.gaussian_scale(1.0)
        by_params = CompositionAccountant(target_delta=1e-6)
        by_params.record(privacy)
        by_sigma = CompositionAccountant(target_delta=1e-6)
        by_sigma.record_gaussian(noise_scale=sigma, l2_sensitivity=1.0)
        assert by_params.zcdp() == pytest.approx(by_sigma.zcdp())
