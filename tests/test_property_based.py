"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import (
    PrivacyParams,
    Strategy,
    Workload,
    eigen_design,
    expected_workload_error,
    minimum_error_bound,
    singular_value_bound,
)
from repro.optimize import WeightingProblem, solve_dual_ascent, solve_dual_newton
from repro.strategies import identity_strategy
from repro.utils.linalg import haar_matrix, hierarchical_matrix

PRIVACY = PrivacyParams(0.5, 1e-4)

matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
)

nonzero_matrices = matrices.filter(lambda m: np.linalg.norm(m) > 1e-6)


class TestWorkloadInvariants:
    @given(nonzero_matrices)
    @settings(max_examples=60, deadline=None)
    def test_gram_is_psd_and_matches_sensitivity(self, matrix):
        workload = Workload(matrix)
        eigenvalues = np.linalg.eigvalsh(workload.gram)
        assert np.all(eigenvalues >= -1e-8)
        assert workload.sensitivity_l2 == pytest.approx(
            np.sqrt(np.max(np.sum(matrix**2, axis=0))), rel=1e-9
        )

    @given(nonzero_matrices)
    @settings(max_examples=60, deadline=None)
    def test_svdb_invariant_under_column_permutation(self, matrix):
        workload = Workload(matrix)
        rng = np.random.default_rng(0)
        permutation = rng.permutation(matrix.shape[1])
        permuted = workload.permute_columns(list(permutation))
        assert singular_value_bound(permuted) == pytest.approx(
            singular_value_bound(workload), rel=1e-6, abs=1e-8
        )

    @given(nonzero_matrices)
    @settings(max_examples=40, deadline=None)
    def test_union_gram_is_sum(self, matrix):
        workload = Workload(matrix)
        doubled = Workload.union([workload, workload])
        np.testing.assert_allclose(doubled.gram, 2 * workload.gram, atol=1e-9)
        assert doubled.query_count == 2 * workload.query_count


class TestErrorInvariants:
    @given(nonzero_matrices, st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_error_invariant_to_strategy_scaling(self, matrix, scale):
        workload = Workload(matrix)
        strategy = identity_strategy(matrix.shape[1])
        scaled = Strategy(strategy.matrix * scale)
        assert expected_workload_error(workload, scaled, PRIVACY) == pytest.approx(
            expected_workload_error(workload, strategy, PRIVACY), rel=1e-9
        )

    @given(nonzero_matrices)
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_below_identity_strategy(self, matrix):
        workload = Workload(matrix)
        error = expected_workload_error(workload, identity_strategy(matrix.shape[1]), PRIVACY)
        assert minimum_error_bound(workload, PRIVACY) <= error + 1e-9

    @given(nonzero_matrices)
    @settings(max_examples=25, deadline=None)
    def test_eigen_design_within_bounds(self, matrix):
        workload = Workload(matrix)
        result = eigen_design(workload, warn_on_no_convergence=False)
        error = expected_workload_error(workload, result.strategy, PRIVACY)
        bound = minimum_error_bound(workload, PRIVACY)
        identity_error = expected_workload_error(
            workload, identity_strategy(matrix.shape[1]), PRIVACY
        )
        assert bound * (1 - 1e-6) <= error
        # The eigen design should never lose badly to the identity strategy.
        assert error <= identity_error * 1.05 + 1e-9


class TestSolverInvariants:
    @given(
        st.integers(2, 8),
        st.integers(2, 8),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_solvers_produce_feasible_and_agreeing_solutions(self, variables, constraints, seed):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.1, 5.0, size=variables)
        matrix = rng.uniform(0.0, 1.0, size=(constraints, variables))
        matrix[0] += 0.1  # ensure every variable appears in some constraint
        problem = WeightingProblem(costs=costs, constraints=matrix)
        ascent = solve_dual_ascent(problem)
        newton = solve_dual_newton(problem)
        for solution in (ascent, newton):
            assert problem.max_violation(solution.weights) <= 1e-7
            assert solution.dual_value <= solution.objective_value + 1e-6
        assert newton.objective_value == pytest.approx(ascent.objective_value, rel=5e-3)


class TestStructuredMatrixInvariants:
    @given(st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_haar_always_square_full_rank(self, size):
        matrix = haar_matrix(size)
        assert matrix.shape == (size, size)
        assert np.linalg.matrix_rank(matrix) == size

    @given(st.integers(1, 40), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_hierarchical_rows_cover_all_cells(self, size, branching):
        matrix = hierarchical_matrix(size, branching)
        assert np.linalg.matrix_rank(matrix) == size
        # The root row is the all-ones total query.
        assert np.array_equal(matrix[0], np.ones(size))
