"""Tests for repro.domain.domain."""

import numpy as np
import pytest

from repro.domain import Domain
from repro.exceptions import DomainError


class TestDomainConstruction:
    def test_size_is_product_of_shape(self):
        assert Domain([8, 16, 16]).size == 2048

    def test_single_attribute(self):
        domain = Domain([10])
        assert domain.size == 10
        assert domain.dimensions == 1

    def test_default_names(self):
        assert Domain([2, 3]).names == ("attr0", "attr1")

    def test_custom_names(self):
        domain = Domain([2, 3], ["gender", "age"])
        assert domain.names == ("gender", "age")

    def test_rejects_empty_shape(self):
        with pytest.raises(DomainError):
            Domain([])

    def test_rejects_zero_sized_attribute(self):
        with pytest.raises(DomainError):
            Domain([4, 0])

    def test_rejects_mismatched_names(self):
        with pytest.raises(DomainError):
            Domain([2, 3], ["only-one"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(DomainError):
            Domain([2, 3], ["a", "a"])

    def test_len_and_iter(self):
        domain = Domain([2, 3, 4])
        assert len(domain) == 3
        assert list(domain) == [2, 3, 4]


class TestDomainIndexing:
    def test_ravel_unravel_roundtrip(self):
        domain = Domain([3, 4, 5])
        for cell in range(domain.size):
            assert domain.ravel(domain.unravel(cell)) == cell

    def test_ravel_is_row_major(self):
        domain = Domain([2, 4])
        assert domain.ravel([0, 0]) == 0
        assert domain.ravel([0, 3]) == 3
        assert domain.ravel([1, 0]) == 4

    def test_ravel_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            Domain([2, 4]).ravel([2, 0])

    def test_unravel_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            Domain([2, 4]).unravel(8)

    def test_attribute_index(self):
        domain = Domain([2, 4], ["gender", "gpa"])
        assert domain.attribute_index("gpa") == 1

    def test_attribute_index_unknown(self):
        with pytest.raises(DomainError):
            Domain([2, 4], ["gender", "gpa"]).attribute_index("age")

    def test_resolve_mixed_names_and_indexes(self):
        domain = Domain([2, 4, 8], ["a", "b", "c"])
        assert domain.resolve(["c", 0]) == (0, 2)

    def test_resolve_rejects_duplicates(self):
        with pytest.raises(DomainError):
            Domain([2, 4], ["a", "b"]).resolve(["a", 0])

    def test_size_of_subset(self):
        domain = Domain([2, 4, 8])
        assert domain.size_of([0, 2]) == 16
        assert domain.size_of([]) == 1


class TestDomainProjection:
    def test_project_keeps_names(self):
        domain = Domain([2, 4, 8], ["a", "b", "c"])
        projected = domain.project(["a", "c"])
        assert projected.shape == (2, 8)
        assert projected.names == ("a", "c")

    def test_project_empty_rejected(self):
        with pytest.raises(DomainError):
            Domain([2, 4]).project([])

    def test_marginalization_matrix_shape(self):
        domain = Domain([2, 4, 3])
        matrix = domain.marginalization_matrix([0, 2])
        assert matrix.shape == (6, 24)

    def test_marginalization_matrix_total(self):
        domain = Domain([2, 4])
        matrix = domain.marginalization_matrix([])
        np.testing.assert_array_equal(matrix, np.ones((1, 8)))

    def test_marginalization_matrix_partitions_cells(self):
        domain = Domain([3, 4])
        matrix = domain.marginalization_matrix([0])
        # Every cell contributes to exactly one marginal cell.
        np.testing.assert_array_equal(matrix.sum(axis=0), np.ones(12))

    def test_marginalization_matrix_counts_match_manual(self):
        domain = Domain([2, 3])
        data = np.arange(6, dtype=float)
        marginal = domain.marginalization_matrix([1]) @ data
        expected = data.reshape(2, 3).sum(axis=0)
        np.testing.assert_allclose(marginal, expected)
