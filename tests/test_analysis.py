"""Tests for repro.analysis (uncertainty quantification and budget planning)."""

import numpy as np
import pytest

from repro import MatrixMechanism, PrivacyParams, Workload, eigen_design, expected_workload_error, per_query_error
from repro.analysis import (
    answer_covariance,
    answer_standard_deviations,
    confidence_intervals,
    epsilon_for_target_bound,
    epsilon_for_target_error,
    error_at_epsilon,
    error_profile,
    expected_max_error,
    sample_error_quantile,
    simultaneous_confidence_radius,
    smallest_accurate_epsilon_table,
)
from repro.exceptions import WorkloadError
from repro.strategies import identity_strategy, wavelet_strategy
from repro.workloads import all_range_queries_1d, example_workload

PRIVACY = PrivacyParams(0.5, 1e-4)


@pytest.fixture
def workload():
    return example_workload()


@pytest.fixture
def strategy(workload):
    return eigen_design(workload).strategy


class TestCovariance:
    def test_covariance_is_psd_and_symmetric(self, workload, strategy):
        covariance = answer_covariance(workload, strategy, PRIVACY)
        np.testing.assert_allclose(covariance, covariance.T, atol=1e-10)
        assert np.all(np.linalg.eigvalsh(covariance) >= -1e-8)

    def test_diagonal_matches_per_query_error(self, workload, strategy):
        covariance = answer_covariance(workload, strategy, PRIVACY)
        deviations = answer_standard_deviations(workload, strategy, PRIVACY)
        np.testing.assert_allclose(np.sqrt(np.diag(covariance)), deviations, rtol=1e-9)
        np.testing.assert_allclose(
            deviations, per_query_error(workload, strategy, PRIVACY), rtol=1e-9
        )

    def test_rms_of_deviations_matches_workload_error(self, workload, strategy):
        deviations = answer_standard_deviations(workload, strategy, PRIVACY)
        rms = float(np.sqrt(np.mean(deviations**2)))
        assert rms == pytest.approx(expected_workload_error(workload, strategy, PRIVACY), rel=1e-9)

    def test_identity_strategy_gives_independent_noise(self):
        workload = Workload.identity(6)
        covariance = answer_covariance(workload, identity_strategy(6), PRIVACY)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 1e-9

    def test_empirical_coverage_of_confidence_intervals(self, workload, strategy):
        """~95% of released answers fall inside their 95% intervals."""
        data = np.full(workload.column_count, 50.0)
        truth = workload.answer(data)
        mechanism = MatrixMechanism(strategy, PRIVACY)
        rng = np.random.default_rng(0)
        covered = 0
        total = 0
        for _ in range(60):
            answers = mechanism.answer(workload, data, random_state=rng)
            intervals = confidence_intervals(answers, workload, strategy, PRIVACY, confidence=0.95)
            covered += int(np.sum((truth >= intervals[:, 0]) & (truth <= intervals[:, 1])))
            total += workload.query_count
        assert covered / total == pytest.approx(0.95, abs=0.04)

    def test_confidence_interval_validation(self, workload, strategy):
        answers = np.zeros(workload.query_count)
        with pytest.raises(WorkloadError):
            confidence_intervals(answers[:-1], workload, strategy, PRIVACY)
        with pytest.raises(WorkloadError):
            confidence_intervals(answers, workload, strategy, PRIVACY, confidence=1.5)

    def test_simultaneous_radius_wider_than_marginal(self, workload, strategy):
        marginal = confidence_intervals(
            np.zeros(workload.query_count), workload, strategy, PRIVACY, confidence=0.95
        )
        marginal_radius = marginal[:, 1]
        simultaneous = simultaneous_confidence_radius(workload, strategy, PRIVACY, confidence=0.95)
        assert np.all(simultaneous >= marginal_radius - 1e-12)

    def test_expected_max_error_dominates_rmse(self, workload, strategy):
        assert expected_max_error(workload, strategy, PRIVACY) >= expected_workload_error(
            workload, strategy, PRIVACY
        )


class TestBudgetPlanning:
    def test_error_at_epsilon_matches_direct_computation(self, workload, strategy):
        assert error_at_epsilon(workload, strategy, 0.5) == pytest.approx(
            expected_workload_error(workload, strategy, PRIVACY)
        )

    def test_epsilon_for_target_round_trip(self, workload, strategy):
        target = 7.5
        epsilon = epsilon_for_target_error(workload, strategy, target)
        achieved = error_at_epsilon(workload, strategy, epsilon)
        assert achieved == pytest.approx(target, rel=1e-9)

    def test_floor_never_exceeds_strategy_requirement(self, workload, strategy):
        target = 3.0
        assert epsilon_for_target_bound(workload, target) <= epsilon_for_target_error(
            workload, strategy, target
        )

    def test_rejects_nonpositive_targets(self, workload, strategy):
        with pytest.raises(WorkloadError):
            epsilon_for_target_error(workload, strategy, 0.0)
        with pytest.raises(WorkloadError):
            epsilon_for_target_bound(workload, -1.0)

    def test_error_profile_is_decreasing_in_epsilon(self, workload, strategy):
        rows = error_profile(workload, strategy, [0.1, 0.5, 1.0, 2.5])
        errors = [row["error"] for row in rows]
        assert errors == sorted(errors, reverse=True)
        for row in rows:
            assert row["error"] >= row["lower_bound"] * 0.999

    def test_error_profile_requires_epsilons(self, workload, strategy):
        with pytest.raises(WorkloadError):
            error_profile(workload, strategy, [])

    def test_epsilon_table(self, workload, strategy):
        rows = smallest_accurate_epsilon_table(
            workload, strategy, [5.0, 50.0], population=10_000
        )
        assert rows[0]["epsilon_needed"] > rows[1]["epsilon_needed"]
        assert rows[0]["target_fraction"] == pytest.approx(5.0 / 10_000)

    def test_quantile_exceeds_mean_error(self):
        workload = all_range_queries_1d(16)
        strategy = wavelet_strategy(16)
        q95 = sample_error_quantile(workload, strategy, PRIVACY, trials=150, random_state=0)
        assert q95 > expected_workload_error(workload, strategy, PRIVACY) * 0.8

    def test_quantile_validation(self, workload, strategy):
        with pytest.raises(WorkloadError):
            sample_error_quantile(workload, strategy, PRIVACY, quantile=1.5)
        with pytest.raises(WorkloadError):
            sample_error_quantile(workload, strategy, PRIVACY, trials=5)
