"""Durability tests: the crash-safe state tier and its recovery invariants.

What the durable state tier (``docs/architecture.md`` §8) must hold:

* **the budget ledger never double-spends and never under-counts across a
  crash** — a ``PENDING`` row is durable *before* the noise draw, so for
  every fault point on the charge→execute→persist path (including a real
  ``SIGKILL`` of a real subprocess, and a kill mid-WAL-commit) the restarted
  accountant's recovered spend is conservative: at least the budget whose
  noise was actually released, at most one stranded reservation more;
* **paid requests fail closed** when the store is unreachable — refused with
  nothing debited — while **free reuse degrades** to in-memory-only;
* **restarts are warm** — persisted plans reboot the cache so a previously
  planned shape never reruns strategy optimization (spied on
  ``eigen_design``), and persisted releases keep serving free answers;
* **two processes can share one ledger file** — WAL plus the busy-retry
  loop keep concurrent charges serializable, with no row lost or doubled.
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.privacy import PrivacyParams
from repro.engine import PlanCache, Planner, Server, Session, StateStore
from repro.engine import faults
from repro.engine.store import PENDING, SPENT, VOIDED
from repro.exceptions import StoreError, StoreUnavailableError
from repro.mechanisms.accountant import BudgetExceededError, PrivacyAccountant

PRIVACY = PrivacyParams(epsilon=1.0, delta=1e-4)
CELLS = 16

pytestmark = pytest.mark.timeout(120)


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "state.db")


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    faults.clear()


def paid_session(store, tenant="alice"):
    return Session(
        PRIVACY, data=np.full(CELLS, 2.0), store=store, tenant=tenant, random_state=7
    )


# --------------------------------------------------------------- store unit
class TestStateStore:
    def test_ledger_write_ahead_lifecycle(self, store_path):
        with StateStore(store_path) as store:
            entry = store.ledger_begin("t", PrivacyParams(0.4, 1e-5), label="q")
            assert store.ledger_counts("t") == {PENDING: 1}
            # PENDING already counts as spent: the write-ahead guarantee.
            assert store.ledger_spent("t") == (0.4, 1e-5)
            store.ledger_settle(entry, SPENT)
            assert store.ledger_counts("t") == {SPENT: 1}
            assert store.ledger_spent("t") == (0.4, 1e-5)

    def test_voided_rows_do_not_count(self, store_path):
        with StateStore(store_path) as store:
            entry = store.ledger_begin("t", PrivacyParams(0.4, 0.0))
            store.ledger_settle(entry, VOIDED)
            assert store.ledger_spent("t") == (0.0, 0.0)
            assert store.ledger_counts("t") == {VOIDED: 1}

    def test_settle_is_pending_only(self, store_path):
        """A settled row is immutable — a late refund cannot unspend it."""
        with StateStore(store_path) as store:
            entry = store.ledger_begin("t", PrivacyParams(0.4, 0.0))
            store.ledger_settle(entry, SPENT)
            store.ledger_settle(entry, VOIDED)  # lost the race: no-op
            assert store.ledger_counts("t") == {SPENT: 1}
            with pytest.raises(StoreError):
                store.ledger_settle(entry, PENDING)

    def test_tenants_are_isolated(self, store_path):
        with StateStore(store_path) as store:
            store.ledger_begin("a", PrivacyParams(0.3, 0.0), label="x")
            store.ledger_begin("b", PrivacyParams(0.5, 0.0), label="y")
            assert store.ledger_spent("a") == (0.3, 0.0)
            assert store.ledger_spent("b") == (0.5, 0.0)
            assert store.ledger_by_label("a") == {
                "x": {"epsilon": 0.3, "delta": 0.0, "count": 1}
            }

    def test_ledger_fails_closed_after_close(self, store_path):
        store = StateStore(store_path)
        store.close()
        assert not store.available
        with pytest.raises(StoreUnavailableError):
            store.ledger_begin("t", PrivacyParams(0.1, 0.0))
        with pytest.raises(StoreUnavailableError):
            store.ledger_spent("t")

    def test_plan_and_release_roundtrip(self, store_path):
        with StateStore(store_path) as store:
            assert store.save_plan("key", {"plan": 1})
            assert store.load_plan("key") == {"plan": 1}
            assert store.load_plans() == [("key", {"plan": 1})]
            assert store.save_release(
                "t", "q", PrivacyParams(0.2, 0.0), "strategy", np.arange(3.0)
            )
            [release] = store.load_releases("t")
            assert release["label"] == "q"
            assert release["params"] == PrivacyParams(0.2, 0.0)
            np.testing.assert_array_equal(release["estimate"], np.arange(3.0))

    def test_persistence_is_best_effort(self, store_path):
        """Warmth writes degrade (counted), they never raise — even closed."""
        store = StateStore(store_path)
        unpicklable = lambda: None  # noqa: E731 - locals don't pickle
        assert not store.save_plan("key", unpicklable)
        store.close()
        assert not store.save_plan("key", {"plan": 1})
        assert not store.save_release("t", "", PrivacyParams(0.1, 0.0), None, None)
        assert store.load_plans() == []
        assert store.load_releases("t") == []
        assert store.persist_failures == 3
        assert store.load_failures == 2

    def test_corrupt_rows_are_skipped(self, store_path):
        with StateStore(store_path) as store:
            store.save_plan("good", {"plan": 1})
            store._conn.execute(
                "INSERT INTO plans (key, payload, created) VALUES ('bad', X'00', 'now')"
            )
            assert store.load_plans() == [("good", {"plan": 1})]
            assert store.load_failures == 1

    def test_stats_snapshot(self, store_path):
        with StateStore(store_path) as store:
            store.ledger_begin("t", PrivacyParams(0.1, 0.0))
            store.save_plan("key", {"plan": 1})
            stats = store.stats()
            assert stats["available"] and stats["ledger_rows"] == 1
            assert stats["plans"] == 1 and stats["persist_failures"] == 0


# ------------------------------------------------------- durable accountant
class TestDurableAccountant:
    def test_charge_writes_ahead_and_commit_promotes(self, store_path):
        with StateStore(store_path) as store:
            accountant = PrivacyAccountant(PRIVACY)
            accountant.bind_ledger(store, "t")
            request = PrivacyParams(0.25, 1e-5)
            accountant.charge(request, label="q")
            assert store.ledger_counts("t") == {PENDING: 1}
            accountant.commit(request, label="q")
            assert store.ledger_counts("t") == {SPENT: 1}
            assert accountant.spent_epsilon == pytest.approx(0.25)

    def test_refund_voids_the_row(self, store_path):
        with StateStore(store_path) as store:
            accountant = PrivacyAccountant(PRIVACY)
            accountant.bind_ledger(store, "t")
            request = PrivacyParams(0.25, 0.0)
            accountant.charge(request, label="q")
            accountant.refund(request, label="q")
            assert store.ledger_counts("t") == {VOIDED: 1}
            assert accountant.spent_epsilon == pytest.approx(0.0)

    def test_recovery_resumes_durable_spend(self, store_path):
        with StateStore(store_path) as store:
            first = PrivacyAccountant(PRIVACY)
            first.bind_ledger(store, "t")
            first.charge(PrivacyParams(0.7, 0.0), label="q")
            first.commit(PrivacyParams(0.7, 0.0), label="q")
        with StateStore(store_path) as store:
            rebooted = PrivacyAccountant(PRIVACY)
            recovered = rebooted.bind_ledger(store, "t")
            assert recovered == (0.7, 0.0)
            assert rebooted.spent_epsilon == pytest.approx(0.7)
            # 0.7 is durably gone: a 0.4 request must be refused.
            with pytest.raises(BudgetExceededError):
                rebooted.charge(PrivacyParams(0.4, 0.0))

    def test_pending_rows_count_as_spent_on_recovery(self, store_path):
        """The conservative rule: an unresolved reservation may have drawn
        noise, so recovery must assume it did."""
        with StateStore(store_path) as store:
            store.ledger_begin("t", PrivacyParams(0.6, 0.0), label="crashed")
        with StateStore(store_path) as store:
            rebooted = PrivacyAccountant(PRIVACY)
            assert rebooted.bind_ledger(store, "t") == (0.6, 0.0)
            with pytest.raises(BudgetExceededError):
                rebooted.charge(PrivacyParams(0.5, 0.0))

    def test_unreachable_ledger_fails_closed(self, store_path):
        store = StateStore(store_path)
        accountant = PrivacyAccountant(PRIVACY)
        accountant.bind_ledger(store, "t")
        store.close()
        with pytest.raises(StoreUnavailableError):
            accountant.charge(PrivacyParams(0.1, 0.0))
        # Fail closed means *nothing* was debited in memory either.
        assert accountant.spent_epsilon == 0.0
        assert accountant.history == []


# --------------------------------------------------------- durable sessions
class TestDurableSession:
    def test_spend_and_releases_survive_a_restart(self, store_path):
        with StateStore(store_path) as store:
            session = paid_session(store)
            session.ask(np.ones((1, CELLS)), epsilon=0.6)
            assert store.ledger_counts("alice") == {SPENT: 1}
        with StateStore(store_path) as store:
            rebooted = paid_session(store)
            assert rebooted.accountant.spent_epsilon == pytest.approx(0.6)
            assert rebooted.releases == 1
            free = rebooted.ask(np.ones((1, CELLS)))
            assert free.served_from_release and free.spent is None

    def test_injected_failure_refunds_and_voids(self, store_path):
        for point in (faults.AFTER_CHARGE, faults.AFTER_EXECUTE):
            with StateStore(store_path) as store:
                session = paid_session(store, tenant=point)
                with faults.failing(point):
                    with pytest.raises(faults.FaultInjected):
                        session.ask(np.ones((1, CELLS)), epsilon=0.5)
                assert session.accountant.spent_epsilon == pytest.approx(0.0)
                assert store.ledger_counts(point) == {VOIDED: 1}
                # The session stays usable: the same request now succeeds.
                answer = session.ask(np.ones((1, CELLS)), epsilon=0.5)
                assert answer.spent is not None
                assert store.ledger_counts(point) == {VOIDED: 1, SPENT: 1}

    def test_unreachable_store_fails_paid_closed_keeps_free_open(self, store_path):
        store = StateStore(store_path)
        session = paid_session(store)
        session.ask(np.ones((1, CELLS)), epsilon=0.5)
        store.close()
        # Paid requests against a dead store are refused, nothing debited...
        with pytest.raises(StoreUnavailableError):
            session.ask(np.ones((2, CELLS)) * 3.0, epsilon=0.2, data=np.ones(CELLS))
        assert session.accountant.spent_epsilon == pytest.approx(0.5)
        # ...while free reuse keeps serving from in-memory releases.
        free = session.ask(np.ones((1, CELLS)))
        assert free.served_from_release

    def test_failed_release_persist_does_not_fail_the_answer(self, store_path):
        store = StateStore(store_path)
        session = paid_session(store)
        # Sever warmth persistence only: the ledger stays reachable.
        store.save_release = lambda *args, **kwargs: False
        answer = session.ask(np.ones((1, CELLS)), epsilon=0.5)
        assert answer.spent is not None
        assert store.ledger_counts("alice") == {SPENT: 1}
        store.close()


# ------------------------------------------------------------- warm reboots
class TestWarmReboot:
    def test_restart_skips_strategy_optimization(self, store_path, monkeypatch):
        import repro.engine.planner as planner_module

        calls = {"count": 0}
        real = planner_module.eigen_design

        def spied(workload, **options):
            calls["count"] += 1
            return real(workload, **options)

        monkeypatch.setattr(planner_module, "eigen_design", spied)
        workload = np.eye(CELLS)[:4]
        with Server(
            PRIVACY, data=np.full(CELLS, 2.0), workers=2, store=store_path
        ) as server:
            server.ask("alice", workload, epsilon=0.3)
        cold_calls = calls["count"]
        assert cold_calls >= 1
        rebooted = Server(
            PRIVACY,
            data=np.full(CELLS, 2.0),
            workers=2,
            store=store_path,
            planner=Planner(cache=PlanCache()),
        )
        with rebooted as server:
            assert server.stats()["store"]["plans_warmed"] >= 1
            answer = server.ask("bob", workload, epsilon=0.3)
            assert answer.plan_cache_hit
            assert server.planner.plans_built == 0
        # The warm reboot never re-entered strategy optimization.
        assert calls["count"] == cold_calls

    def test_server_stats_surface_the_store(self, store_path):
        with Server(
            PRIVACY, data=np.full(CELLS, 2.0), workers=2, store=store_path
        ) as server:
            server.ask("alice", np.ones((1, CELLS)), epsilon=0.4)
            stats = server.stats()
            assert stats["store"]["available"]
            assert stats["store"]["ledger_rows"] == 1
            by_label = stats["spent"]["alice"]["by_label"]
            assert by_label["adhoc"]["count"] == 1
            assert by_label["adhoc"]["epsilon"] == pytest.approx(0.4)

    def test_plan_cache_warm_is_idempotent_and_counted(self):
        cache = PlanCache(max_entries=4)
        cache.put("live", "live-plan")
        loaded = cache.warm([("live", "stale-plan"), ("cold", "cold-plan")])
        assert loaded == 1
        assert cache.peek("live") == "live-plan"  # live entry wins
        assert cache.peek("cold") == "cold-plan"
        assert cache.stats["warmed"] == 1
        assert cache.stats["hits"] == 0 and cache.stats["misses"] == 0


# -------------------------------------------------------- real crash matrix
#: One paid request against a durable session; the REPRO_FAULT_KILL point in
#: the environment SIGKILLs the process somewhere along the paid path.
DRIVER = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.core.privacy import PrivacyParams
    from repro.engine import Session, StateStore

    store = StateStore(sys.argv[1])
    session = Session(
        PrivacyParams(1.0, 1e-4),
        data=np.full({cells}, 2.0),
        store=store,
        tenant="alice",
        random_state=7,
    )
    session.ask(np.ones((1, {cells})), epsilon=0.5)
    print("SURVIVED")
    """
).format(cells=CELLS)

#: fault point -> (ledger states after recovery, recovered epsilon).
#: Everywhere the answer could have been released, the spend must survive;
#: a kill mid-transaction must roll back (no noise existed yet).
CRASH_MATRIX = {
    faults.LEDGER_MID_COMMIT: ({}, 0.0),
    faults.AFTER_CHARGE: ({PENDING: 1}, 0.5),
    faults.AFTER_EXECUTE: ({PENDING: 1}, 0.5),
    faults.AFTER_COMMIT: ({SPENT: 1}, 0.5),
    faults.AFTER_PERSIST: ({SPENT: 1}, 0.5),
}


def run_driver(store_path, kill_at=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    if kill_at is not None:
        env[faults.FAULT_ENV] = kill_at
    else:
        env.pop(faults.FAULT_ENV, None)
    return subprocess.run(
        [sys.executable, "-c", DRIVER, store_path],
        env=env,
        capture_output=True,
        text=True,
        timeout=90,
    )


class TestCrashMatrix:
    @pytest.mark.parametrize("point", list(CRASH_MATRIX))
    def test_sigkill_at_every_fault_point(self, store_path, point):
        completed = run_driver(store_path, kill_at=point)
        assert completed.returncode == -signal.SIGKILL, completed.stderr
        assert "SURVIVED" not in completed.stdout
        expected_states, expected_epsilon = CRASH_MATRIX[point]
        with StateStore(store_path) as store:
            assert store.ledger_counts("alice") == expected_states
            epsilon, _ = store.ledger_spent("alice")
            assert epsilon == pytest.approx(expected_epsilon)
            # Recovery through a real session agrees with the raw ledger.
            rebooted = paid_session(store)
            assert rebooted.accountant.spent_epsilon == pytest.approx(
                expected_epsilon
            )

    def test_crash_then_restart_never_double_spends(self, store_path):
        """Crash after the noise draw, then run the same request to
        completion: exactly one extra spend lands — the stranded PENDING
        reservation stays, the budget is never charged twice for one row."""
        crashed = run_driver(store_path, kill_at=faults.AFTER_EXECUTE)
        assert crashed.returncode == -signal.SIGKILL
        completed = run_driver(store_path)
        assert completed.returncode == 0, completed.stderr
        assert "SURVIVED" in completed.stdout
        with StateStore(store_path) as store:
            assert store.ledger_counts("alice") == {PENDING: 1, SPENT: 1}
            epsilon, _ = store.ledger_spent("alice")
            assert epsilon == pytest.approx(1.0)
            # The budget is now exhausted: a third run must be refused.
            rebooted = paid_session(store)
            assert rebooted.remaining is None


# ------------------------------------------------- two-process ledger file
CONTENDER = textwrap.dedent(
    """
    import sys
    from repro.core.privacy import PrivacyParams
    from repro.engine import StateStore
    from repro.engine.store import SPENT

    store = StateStore(sys.argv[1], retry_attempts=8, retry_base_seconds=0.005)
    for index in range(int(sys.argv[3])):
        entry = store.ledger_begin(sys.argv[2], PrivacyParams(0.01, 0.0), "c")
        store.ledger_settle(entry, SPENT)
    store.close()
    print("DONE")
    """
)


class TestCrossProcessContention:
    def test_two_processes_share_one_ledger(self, store_path):
        rounds = 20
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", CONTENDER, store_path, tenant, str(rounds)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for tenant in ("left", "right")
        ]
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=90)
            assert worker.returncode == 0, stderr
            assert "DONE" in stdout
        with StateStore(store_path) as store:
            # Every charge of both processes landed exactly once, all SPENT.
            for tenant in ("left", "right"):
                assert store.ledger_counts(tenant) == {SPENT: rounds}
                epsilon, _ = store.ledger_spent(tenant)
                assert epsilon == pytest.approx(0.01 * rounds)
