"""Tests for the weighting solvers (dual ascent, dual Newton, scipy, dispatcher)."""

import numpy as np
import pytest

from repro.core.eigen_design import eigen_queries
from repro.exceptions import OptimizationError
from repro.optimize import (
    WeightingProblem,
    l1_weighting_problem,
    solve_dual_ascent,
    solve_dual_newton,
    solve_l1_weights,
    solve_scipy,
    solve_weighting,
)
from repro.workloads import all_range_queries_1d, cdf_workload, kway_marginals


def _eigen_problem(workload) -> WeightingProblem:
    values, queries = eigen_queries(workload)
    return WeightingProblem(costs=values, constraints=(queries**2).T)


@pytest.fixture(scope="module")
def range_problem() -> WeightingProblem:
    return _eigen_problem(all_range_queries_1d(32))


ALL_SOLVERS = [solve_dual_ascent, solve_dual_newton, solve_scipy]


class TestSolverAgreement:
    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_feasible_solution(self, range_problem, solver):
        solution = solver(range_problem)
        assert range_problem.max_violation(solution.weights) <= 1e-8
        assert np.all(solution.weights >= 0)

    def test_all_backends_agree_on_optimum(self, range_problem):
        values = [solver(range_problem).objective_value for solver in ALL_SOLVERS]
        assert max(values) == pytest.approx(min(values), rel=1e-3)

    @pytest.mark.parametrize("solver", [solve_dual_ascent, solve_dual_newton])
    def test_duality_gap_certificate(self, range_problem, solver):
        solution = solver(range_problem)
        assert solution.converged
        assert solution.relative_gap <= 1e-5
        assert solution.dual_value <= solution.objective_value + 1e-9

    def test_agreement_on_marginal_workload(self):
        problem = _eigen_problem(kway_marginals([4, 4, 4], 2))
        newton = solve_dual_newton(problem)
        ascent = solve_dual_ascent(problem)
        assert newton.objective_value == pytest.approx(ascent.objective_value, rel=1e-4)

    def test_agreement_on_skewed_cdf_workload(self):
        problem = _eigen_problem(cdf_workload(48))
        newton = solve_dual_newton(problem)
        reference = solve_scipy(problem)
        assert newton.objective_value == pytest.approx(reference.objective_value, rel=1e-3)

    def test_known_closed_form_diagonal_case(self):
        # With an identity design, min sum c_i/u_i s.t. u_i <= 1 has solution
        # u_i = 1 and objective sum(c_i).
        costs = np.array([3.0, 5.0, 2.0])
        problem = WeightingProblem(costs=costs, constraints=np.eye(3))
        for solver in ALL_SOLVERS:
            solution = solver(problem)
            assert solution.objective_value == pytest.approx(costs.sum(), rel=1e-6)
            np.testing.assert_allclose(solution.weights, 1.0, rtol=1e-4)

    def test_shared_constraint_closed_form(self):
        # One constraint u1 + u2 <= 1 with costs (4, 1): optimal u = (2/3, 1/3),
        # objective = 4/(2/3) + 1/(1/3) = 9 (Cauchy-Schwarz: (sum sqrt(c_i))^2).
        problem = WeightingProblem(
            costs=np.array([4.0, 1.0]), constraints=np.array([[1.0, 1.0]])
        )
        for solver in ALL_SOLVERS:
            solution = solver(problem)
            assert solution.objective_value == pytest.approx(9.0, rel=1e-6)


class TestDispatcher:
    def test_auto_solver_converges(self, range_problem):
        solution = solve_weighting(range_problem)
        assert solution.converged

    def test_named_solver(self, range_problem):
        solution = solve_weighting(range_problem, solver="dual-newton")
        assert solution.solver == "dual-newton"

    def test_unknown_solver(self, range_problem):
        with pytest.raises(OptimizationError):
            solve_weighting(range_problem, solver="simplex")

    def test_convergence_warning_emitted(self, range_problem):
        from repro.exceptions import ConvergenceWarning

        with pytest.warns(ConvergenceWarning):
            solve_weighting(range_problem, solver="dual-ascent", max_iterations=2)

    def test_options_forwarded(self, range_problem):
        solution = solve_weighting(range_problem, solver="dual-ascent", max_iterations=3,
                                   warn_on_no_convergence=False)
        assert solution.iterations <= 3


class TestL1Weighting:
    def test_problem_uses_absolute_values(self):
        design = np.array([[1.0, -1.0], [0.0, 2.0]])
        problem = l1_weighting_problem(design, np.array([1.0, 1.0]))
        np.testing.assert_allclose(problem.constraints, np.abs(design).T)
        assert problem.power == 2.0

    def test_l1_weights_feasible(self):
        workload = all_range_queries_1d(16)
        values, queries = eigen_queries(workload)
        solution = solve_l1_weights(queries, values)
        # L1 column norms of the weighted strategy stay within 1.
        weighted = solution.weights[:, None] * queries
        assert np.abs(weighted).sum(axis=0).max() <= 1 + 1e-6

    def test_l1_closed_form_single_query(self):
        # One design query (1, 1), cost 1: constraint lambda * 1 <= 1 so
        # lambda = 1 and objective = 1.
        solution = solve_l1_weights(np.array([[1.0, 1.0]]), np.array([1.0]))
        assert solution.objective_value == pytest.approx(1.0, rel=1e-5)
        assert solution.weights[0] == pytest.approx(1.0, rel=1e-5)
