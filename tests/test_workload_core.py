"""Tests for the core Workload abstraction."""

import numpy as np
import pytest

from repro import Workload
from repro.domain import Domain
from repro.exceptions import MaterializationError, WorkloadError


class TestConstruction:
    def test_from_matrix_shape(self):
        workload = Workload(np.ones((3, 5)))
        assert workload.shape == (3, 5)
        assert workload.has_matrix

    def test_from_gram_requires_query_count(self):
        with pytest.raises(WorkloadError):
            Workload(None, gram=np.eye(4))

    def test_from_gram(self):
        workload = Workload.from_gram(np.eye(4), query_count=10)
        assert workload.query_count == 10
        assert not workload.has_matrix

    def test_needs_matrix_or_gram(self):
        with pytest.raises(WorkloadError):
            Workload(None)

    def test_rejects_nonsquare_gram(self):
        with pytest.raises(WorkloadError):
            Workload.from_gram(np.ones((2, 3)), query_count=1)

    def test_rejects_inconsistent_query_count(self):
        with pytest.raises(WorkloadError):
            Workload(np.ones((3, 5)), query_count=4)

    def test_rejects_mismatched_domain(self):
        with pytest.raises(WorkloadError):
            Workload(np.ones((3, 5)), domain=Domain([2, 2]))

    def test_identity_and_total(self):
        assert Workload.identity(4).query_count == 4
        assert Workload.total(4).query_count == 1
        np.testing.assert_array_equal(Workload.total(4).matrix, np.ones((1, 4)))


class TestGramAndSensitivity:
    def test_gram_matches_matrix(self):
        matrix = np.array([[1.0, 2.0], [0.0, 1.0]])
        workload = Workload(matrix)
        np.testing.assert_allclose(workload.gram, matrix.T @ matrix)

    def test_l2_sensitivity_is_max_column_norm(self, fig1_workload):
        # The paper states ||W||_2 = sqrt(5) for the Fig. 1 workload.
        assert fig1_workload.sensitivity_l2 == pytest.approx(np.sqrt(5.0))

    def test_l1_sensitivity(self, fig1_workload):
        matrix = fig1_workload.matrix
        expected = np.abs(matrix).sum(axis=0).max()
        assert fig1_workload.sensitivity_l1 == pytest.approx(expected)

    def test_l1_sensitivity_requires_matrix(self):
        workload = Workload.from_gram(np.eye(3), query_count=3)
        with pytest.raises(MaterializationError):
            _ = workload.sensitivity_l1

    def test_implicit_matrix_access_raises(self):
        workload = Workload.from_gram(np.eye(3), query_count=3)
        with pytest.raises(MaterializationError):
            _ = workload.matrix

    def test_eigenvalues_descending_and_nonnegative(self, fig1_workload):
        values = fig1_workload.eigenvalues
        assert np.all(np.diff(values) <= 1e-12)
        assert np.all(values >= 0)

    def test_rank_of_fig1_workload_is_four(self, fig1_workload):
        # Every Fig. 1 query is constant on the four gender x (gpa<3) blocks.
        assert fig1_workload.rank == 4

    def test_rank_of_identity(self):
        assert Workload.identity(6).rank == 6


class TestCompositions:
    def test_kronecker_explicit(self):
        left = Workload(np.array([[1.0, 1.0]]))
        right = Workload.identity(3)
        product = Workload.kronecker([left, right])
        assert product.shape == (3, 6)
        np.testing.assert_allclose(product.gram, np.kron(left.gram, right.gram))

    def test_kronecker_implicit_gram(self):
        left = Workload.from_gram(np.eye(3) * 4, query_count=100)
        right = Workload.identity(2)
        product = Workload.kronecker([left, right])
        assert not product.has_matrix
        assert product.query_count == 200
        np.testing.assert_allclose(product.gram, np.kron(np.eye(3) * 4, np.eye(2)))

    def test_union_stacks_matrices(self):
        union = Workload.union([Workload.identity(3), Workload.total(3)])
        assert union.shape == (4, 3)

    def test_union_adds_grams(self):
        first = Workload.from_gram(np.eye(3), query_count=3)
        second = Workload.total(3)
        union = Workload.union([first, second])
        assert union.query_count == 4
        np.testing.assert_allclose(union.gram, np.eye(3) + np.ones((3, 3)))

    def test_union_requires_same_cells(self):
        with pytest.raises(WorkloadError):
            Workload.union([Workload.identity(3), Workload.identity(4)])

    def test_empty_union_rejected(self):
        with pytest.raises(WorkloadError):
            Workload.union([])


class TestTransformations:
    def test_answer(self, fig1_workload):
        data = np.arange(8, dtype=float)
        np.testing.assert_allclose(fig1_workload.answer(data), fig1_workload.matrix @ data)

    def test_scale_rows_scalar(self):
        workload = Workload.identity(3).scale_rows(2.0)
        np.testing.assert_array_equal(workload.matrix, 2 * np.eye(3))

    def test_scale_rows_vector(self):
        workload = Workload.identity(3).scale_rows(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(np.diag(workload.matrix), [1, 2, 3])

    def test_normalize_rows_unit_norms(self, fig1_workload):
        normalized = fig1_workload.normalize_rows()
        norms = np.linalg.norm(normalized.matrix, axis=1)
        np.testing.assert_allclose(norms, np.ones(8))

    def test_normalize_rows_keeps_zero_rows(self):
        workload = Workload(np.array([[0.0, 0.0], [1.0, 1.0]]))
        normalized = workload.normalize_rows()
        np.testing.assert_array_equal(normalized.matrix[0], [0.0, 0.0])

    def test_permute_columns_explicit(self, fig1_workload):
        permutation = list(reversed(range(8)))
        permuted = fig1_workload.permute_columns(permutation)
        np.testing.assert_array_equal(permuted.matrix, fig1_workload.matrix[:, permutation])

    def test_permute_columns_implicit_gram(self):
        gram = np.diag([1.0, 2.0, 3.0])
        workload = Workload.from_gram(gram, query_count=5)
        permuted = workload.permute_columns([2, 0, 1])
        np.testing.assert_array_equal(np.diag(permuted.gram), [3.0, 1.0, 2.0])

    def test_permute_columns_invalid(self, fig1_workload):
        with pytest.raises(WorkloadError):
            fig1_workload.permute_columns([0, 1])

    def test_rotate_preserves_gram(self, fig1_workload, rng):
        random = rng.normal(size=(8, 8))
        orthogonal, _ = np.linalg.qr(random)
        rotated = fig1_workload.rotate(orthogonal)
        np.testing.assert_allclose(rotated.gram, fig1_workload.gram, atol=1e-9)

    def test_rotate_requires_square_match(self, fig1_workload):
        with pytest.raises(WorkloadError):
            fig1_workload.rotate(np.eye(3))
