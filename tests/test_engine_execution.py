"""The execution tier (PR 6): process pool, coalescing, async admission.

What horizontal scale-out must *not* change:

* **bit-for-bit determinism** — the same seeded request produces the same
  answer whether it ran inline, on a worker process, or via the async
  front-end; plans survive the pickle boundary exactly;
* **budget integrity** — N racing identical requests charge the tenant
  exactly once (coalescing), and a rejected request (backpressure, drain)
  charges nothing at all;
* **bounded queues** — the admission front-end rejects with a
  ``retry_after`` hint instead of buffering without bound.
"""

import pickle
import threading

import numpy as np
import pytest

from repro.core.privacy import PrivacyParams
from repro.core.workload import Workload
from repro.engine import Planner, ProcessExecutor, Server
from repro.workloads import all_range_queries_1d

PRIVACY = PrivacyParams(epsilon=0.5, delta=1e-4)

# Worker-process spawn plus a wedged future would hang, not fail; the
# timeout marker (pytest-timeout in CI, conftest SIGALRM fallback locally)
# keeps this module diagnosable.
pytestmark = pytest.mark.timeout(300)

CELLS = 16


def _data(cells=CELLS):
    return np.arange(cells, dtype=float) * 2.0


# --------------------------------------------------------- pickle boundary
class TestPickleBoundary:
    def test_plan_roundtrips_and_executes_identically(self):
        planner = Planner()
        workload = all_range_queries_1d(CELLS)
        plan = planner.plan(workload, PRIVACY)
        clone = pickle.loads(pickle.dumps(plan))
        data = _data()
        original = plan.execute(
            workload, data, PRIVACY, random_state=np.random.default_rng(7)
        )
        copied = clone.execute(
            workload, data, PRIVACY, random_state=np.random.default_rng(7)
        )
        np.testing.assert_array_equal(original.answers, copied.answers)
        np.testing.assert_array_equal(original.estimate, copied.estimate)

    def test_unpickled_mechanism_still_thread_safe(self):
        # __setstate__ must rebuild the dropped lock, not leave None behind.
        planner = Planner()
        plan = planner.plan(all_range_queries_1d(8), PRIVACY)
        clone = pickle.loads(pickle.dumps(plan))
        data = np.ones(8)

        def work():
            clone.execute(
                all_range_queries_1d(8),
                data,
                PRIVACY,
                random_state=np.random.default_rng(0),
            )

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()


# ------------------------------------------------------------ process pool
class TestProcessExecutor:
    @pytest.fixture(scope="class")
    def executor(self):
        with ProcessExecutor(workers=2) as executor:
            yield executor

    def test_worker_answers_match_inline_oracle_bitwise(self, executor):
        planner = Planner()
        workload = all_range_queries_1d(CELLS)
        params = PRIVACY
        plan = planner.plan(workload, params)
        key = planner.plan_key(workload, params)
        data = _data()
        oracle = plan.execute(
            workload, data, params, random_state=np.random.default_rng(11)
        )
        result = executor.execute(
            plan, workload, data, params, np.random.default_rng(11), key=key
        )
        np.testing.assert_array_equal(result.answers, oracle.answers)
        np.testing.assert_array_equal(result.estimate, oracle.estimate)
        stats = executor.stats()
        assert stats["executed"] >= 1
        assert stats["inline_fallbacks"] == 0

    def test_plan_ships_once_per_worker_per_key(self, executor):
        planner = Planner()
        workload = all_range_queries_1d(12)
        plan = planner.plan(workload, PRIVACY)
        key = planner.plan_key(workload, PRIVACY)
        data = np.ones(12)
        before = executor.stats()
        for seed in range(4):
            executor.execute(
                plan, workload, data, PRIVACY, np.random.default_rng(seed), key=key
            )
        after = executor.stats()
        assert after["executed"] - before["executed"] == 4
        # Content-addressing: the full payload crossed at most once per
        # worker (2 workers); the rest ran against the memoised warm plan.
        assert after["plans_offloaded"] - before["plans_offloaded"] <= 2

    def test_offloaded_optimization_builds_the_same_plan(self, executor):
        planner = Planner()
        workload = all_range_queries_1d(CELLS)
        key = planner.plan_key(workload, PRIVACY)
        offloaded = executor.optimize(workload, PRIVACY, key, planner.config())
        assert offloaded is not None
        inline = planner.plan(workload, PRIVACY)
        data = _data()
        a = offloaded.execute(
            workload, data, PRIVACY, random_state=np.random.default_rng(3)
        )
        b = inline.execute(
            workload, data, PRIVACY, random_state=np.random.default_rng(3)
        )
        np.testing.assert_allclose(a.answers, b.answers)
        assert offloaded.expected_error(PRIVACY) == pytest.approx(
            inline.expected_error(PRIVACY)
        )

    def test_closed_executor_degrades_to_inline(self):
        executor = ProcessExecutor(workers=1)
        executor.close()
        planner = Planner()
        workload = Workload.identity(8)
        plan = planner.plan(workload, PRIVACY)
        result = executor.execute(
            plan, workload, np.ones(8), PRIVACY, np.random.default_rng(0)
        )
        assert result.answers.shape == (8,)
        assert executor.stats()["inline_fallbacks"] == 1


class TestProcessServer:
    def test_process_server_matches_thread_oracle_bitwise(self):
        data = _data()
        shapes = [all_range_queries_1d(CELLS), Workload.identity(CELLS)]
        requests = [
            (f"tenant-{i % 3}", shapes[i % len(shapes)], 100 + i) for i in range(8)
        ]

        def run_server(execution):
            server = Server(
                PrivacyParams(10.0, 1e-3),
                data=data,
                workers=2,
                execution=execution,
                random_state=0,
            )
            entries = [
                (tenant, workload, {"epsilon": 0.2, "data": data, "random_state": seed})
                for tenant, workload, seed in requests
            ]
            answers = server.ask_many(entries)
            stats = server.stats()
            server.close()
            return [answer.answers for answer in answers], stats

        process, process_stats = run_server("process")
        thread, _ = run_server("thread")
        for got, expected in zip(process, thread):
            np.testing.assert_array_equal(got, expected)
        executor_stats = process_stats["process_executor"]
        assert executor_stats is not None
        assert executor_stats["executed"] == len(requests)
        assert executor_stats["inline_fallbacks"] == 0
        assert process_stats["execution"] == "process"

    def test_offload_hook_installed_and_uninstalled(self):
        planner = Planner()
        server = Server(
            PrivacyParams(1.0, 1e-4),
            data=np.ones(8),
            planner=planner,
            workers=1,
            execution="process",
        )
        assert planner.build_offload is not None
        server.close()
        assert planner.build_offload is None

    def test_invalid_execution_rejected(self):
        with pytest.raises(Exception):
            Server(PrivacyParams(1.0, 1e-4), data=np.ones(4), execution="gpu")


# -------------------------------------------------------------- coalescing
class TestCoalescing:
    def test_racing_identical_requests_charge_once(self):
        burst = 8
        server = Server(
            PrivacyParams(1.0, 1e-4), data=_data(), workers=burst, random_state=0
        )
        session = server.open_session("t")
        real_ask = session.ask
        leader_entered = threading.Event()
        release_leader = threading.Event()

        def gated_ask(request, **options):
            leader_entered.set()
            assert release_leader.wait(timeout=60)
            return real_ask(request, **options)

        session.ask = gated_ask
        workload = all_range_queries_1d(CELLS)
        answers = [None] * burst
        threads = [
            threading.Thread(
                target=lambda i=i: answers.__setitem__(
                    i, server.ask("t", workload, epsilon=0.4)
                )
            )
            for i in range(burst)
        ]
        for thread in threads:
            thread.start()
        assert leader_entered.wait(timeout=60)
        # Hold the leader until every other request has attached to it.
        deadline = threading.Event()
        for _ in range(600):
            if server.stats()["coalesce"]["followers"] == burst - 1:
                break
            deadline.wait(0.05)
        release_leader.set()
        for thread in threads:
            thread.join()
        server.close()
        stats = server.stats()
        assert stats["coalesce"] == {"leaders": 1, "followers": burst - 1}
        # One execution, one release, one debit — fanned out to the burst.
        assert session.accountant.spent_epsilon == pytest.approx(0.4)
        assert session.releases == 1
        reference = answers[0]
        for answer in answers[1:]:
            assert answer is reference

    def test_explicit_seed_or_data_never_coalesces(self):
        server = Server(
            PrivacyParams(5.0, 1e-3), data=_data(), workers=2, random_state=0
        )
        workload = Workload.identity(CELLS)
        first = server.ask("t", workload, epsilon=0.5, data=_data(), random_state=1)
        second = server.ask("t", workload, epsilon=0.5, data=_data(), random_state=2)
        server.close()
        stats = server.stats()
        assert stats["coalesce"] == {"leaders": 0, "followers": 0}
        # Independent draws were demanded and delivered.
        assert not np.array_equal(first.answers, second.answers)

    def test_coalesce_false_forces_independent_execution(self):
        server = Server(
            PrivacyParams(5.0, 1e-3), data=_data(), workers=2, random_state=0
        )
        server.ask("t", Workload.identity(CELLS), epsilon=0.5, coalesce=False)
        server.close()
        assert server.stats()["coalesce"]["leaders"] == 0


# ------------------------------------------------- backpressure and draining
class TestAdmissionControl:
    LINES = [
        '{"tenant": "a", "sql": "SELECT COUNT(*) FROM t GROUP BY color"}',
        '{"tenant": "b", "sql": "SELECT COUNT(*) FROM t GROUP BY color"}',
        '{"tenant": "c", "sql": "SELECT COUNT(*) FROM t GROUP BY color"}',
    ]

    @staticmethod
    def _server(**overrides):
        from repro.relational.relation import Relation
        from repro.relational.vectorize import infer_schema, sample_relation

        schema = infer_schema(
            Relation({"color": ["red", "blue"] * 8}), {"color": "categorical"}
        )
        relation = sample_relation(schema, 200, random_state=0)
        options = dict(
            schema=schema,
            data=relation,
            workers=2,
            default_epsilon=0.5,
            random_state=0,
        )
        options.update(overrides)
        return Server(PrivacyParams(2.0, 1e-4), **options)

    def test_backpressure_rejects_and_charges_nothing(self):
        server = self._server()
        replies = server.serve_async(self.LINES, queue_depth=0)
        server.close()
        assert len(replies) == 3
        for reply in replies:
            assert reply["rejected"] is True
            assert reply["retry_after"] > 0
        # No session was opened, no budget touched, nothing executed.
        assert server.stats()["spent"] == {}
        assert server.stats()["answers_served"] == 0

    def test_admitted_requests_serve_normally(self):
        server = self._server()
        replies = server.serve_async(self.LINES, queue_depth=16)
        server.close()
        assert len(replies) == 3
        for reply in replies:
            assert "rejected" not in reply
            assert reply["spent"] is not None
        assert set(server.stats()["spent"]) == {"a", "b", "c"}

    def test_async_replies_match_sync_replies(self):
        lines = [
            '{"tenant": "a", "sql": "SELECT COUNT(*) FROM t GROUP BY color"}',
            "{\"tenant\": \"a\", \"sql\": \"SELECT COUNT(*) FROM t WHERE color = 'red'\"}",
        ]
        sync_server = self._server()
        sync = sync_server.serve(lines)
        sync_server.close()
        async_server = self._server()
        concurrent = async_server.serve_async(lines, queue_depth=8)
        async_server.close()
        for a, b in zip(sync, concurrent):
            assert a["answers"] == b["answers"]
        # Per-tenant ordering held: the follow-up reused the release.
        assert concurrent[1]["served_from_release"]

    def test_stop_drains_without_executing(self):
        stop = threading.Event()
        stop.set()
        server = self._server()
        sync = server.serve(self.LINES, stop=stop)
        concurrent = server.serve_async(self.LINES, stop=stop)
        server.close()
        for reply in list(sync) + list(concurrent):
            assert reply["rejected"] is True
            assert "shutting down" in reply["error"]
        assert server.stats()["spent"] == {}

    def test_stage_stats_populated(self):
        server = self._server()
        # The follow-up reuses tenant a's release, exercising the derive stage.
        lines = self.LINES + [
            "{\"tenant\": \"a\", \"sql\": \"SELECT COUNT(*) FROM t WHERE color = 'red'\"}",
        ]
        server.serve_async(lines, queue_depth=8)
        server.close()
        stages = server.stats()["stages"]
        for stage in ("queue_wait", "plan_lookup", "execute", "derive"):
            assert stage in stages, stages
            assert stages[stage]["count"] >= 1
            assert stages[stage]["mean_ms"] >= 0.0
            assert stages[stage]["p95_ms"] >= 0.0
