"""Tests for the epsilon-DP (Laplace) matrix mechanism (Sec. 3.5 variant)."""

import numpy as np
import pytest

from repro import PrivacyParams, Workload, eigen_design
from repro.exceptions import PrivacyError, SingularStrategyError
from repro.mechanisms import (
    LaplaceMatrixMechanism,
    MatrixMechanism,
    expected_workload_error_l1,
)
from repro.strategies import hierarchical_strategy, identity_strategy, wavelet_strategy
from repro.workloads import all_range_queries_1d, example_workload


class TestExpectedErrorL1:
    def test_identity_strategy_closed_form(self):
        """For the identity strategy the L1 error has a simple closed form."""
        workload = Workload.identity(16)
        error = expected_workload_error_l1(workload, identity_strategy(16), 1.0)
        # Each answer gets Laplace noise of scale 1/epsilon = 1, variance 2.
        assert error == pytest.approx(np.sqrt(2.0))

    def test_scales_inversely_with_epsilon(self):
        workload = example_workload()
        strategy = wavelet_strategy(8)
        error_1 = expected_workload_error_l1(workload, strategy, 1.0)
        error_2 = expected_workload_error_l1(workload, strategy, 2.0)
        assert error_1 == pytest.approx(2 * error_2)

    def test_accepts_privacy_params(self):
        workload = example_workload()
        strategy = wavelet_strategy(8)
        by_params = expected_workload_error_l1(workload, strategy, PrivacyParams(0.5, 1e-4))
        by_epsilon = expected_workload_error_l1(workload, strategy, 0.5)
        assert by_params == pytest.approx(by_epsilon)

    def test_low_sensitivity_strategy_beats_asking_the_workload(self):
        """The "don't ask for what you want" principle holds under L1 calibration too."""
        from repro.strategies import workload_strategy

        workload = all_range_queries_1d(64)
        direct_error = expected_workload_error_l1(workload, workload_strategy(workload), 1.0)
        identity_error = expected_workload_error_l1(workload, identity_strategy(64), 1.0)
        hierarchy_error = expected_workload_error_l1(workload, hierarchical_strategy(64), 1.0)
        assert identity_error < direct_error
        assert hierarchy_error < direct_error

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(PrivacyError):
            expected_workload_error_l1(example_workload(), identity_strategy(8), 0.0)


class TestLaplaceMatrixMechanism:
    def test_noise_scale_uses_l1_sensitivity(self):
        strategy = hierarchical_strategy(16)
        mechanism = LaplaceMatrixMechanism(strategy, 0.5)
        assert mechanism.noise_scale == pytest.approx(strategy.sensitivity_l1 / 0.5)

    def test_answers_are_consistent(self):
        """All answers derive from one estimate, so linear identities hold exactly."""
        workload = example_workload()
        mechanism = LaplaceMatrixMechanism(wavelet_strategy(8), 1.0)
        data = np.arange(8.0) * 5
        result = mechanism.run(workload, data, random_state=0)
        # q1 (all students) = q2 (female) + q3 (male) in Fig. 1(b).
        assert result.answers[0] == pytest.approx(result.answers[1] + result.answers[2])

    def test_reproducible_with_seed(self):
        workload = example_workload()
        mechanism = LaplaceMatrixMechanism(wavelet_strategy(8), 1.0)
        data = np.ones(8) * 10
        first = mechanism.answer(workload, data, random_state=3)
        second = mechanism.answer(workload, data, random_state=3)
        np.testing.assert_array_equal(first, second)

    def test_observed_error_matches_expectation(self):
        """Monte-Carlo RMSE agrees with the closed form within sampling tolerance."""
        workload = example_workload()
        strategy = wavelet_strategy(8)
        mechanism = LaplaceMatrixMechanism(strategy, 1.0)
        data = np.full(8, 100.0)
        true_answers = workload.answer(data)
        rng = np.random.default_rng(0)
        squared = []
        for _ in range(300):
            noisy = mechanism.answer(workload, data, random_state=rng)
            squared.append(np.mean((noisy - true_answers) ** 2))
        observed = float(np.sqrt(np.mean(squared)))
        expected = mechanism.expected_error(workload)
        assert observed == pytest.approx(expected, rel=0.15)

    def test_nonnegative_estimate(self):
        workload = example_workload()
        mechanism = LaplaceMatrixMechanism(identity_strategy(8), 0.5, nonnegative=True)
        result = mechanism.run(workload, np.zeros(8), random_state=0)
        assert np.all(result.estimate >= 0)

    def test_rejects_mismatched_cells(self):
        mechanism = LaplaceMatrixMechanism(identity_strategy(8), 0.5)
        with pytest.raises(SingularStrategyError):
            mechanism.run(Workload.identity(4), np.zeros(8))

    def test_rejects_unsupported_workload(self):
        # A strategy that only observes the first two cells cannot answer cell 3.
        strategy_matrix = np.zeros((2, 4))
        strategy_matrix[0, 0] = 1
        strategy_matrix[1, 1] = 1
        from repro import Strategy

        mechanism = LaplaceMatrixMechanism(Strategy(strategy_matrix), 0.5)
        query = np.zeros((1, 4))
        query[0, 3] = 1.0
        with pytest.raises(SingularStrategyError):
            mechanism.run(Workload(query), np.zeros(4))

    def test_rejects_bad_epsilon(self):
        with pytest.raises(PrivacyError):
            LaplaceMatrixMechanism(identity_strategy(4), -1.0)


class TestGaussianVsLaplaceRegimes:
    def test_gaussian_wins_for_large_workloads_at_matching_budgets(self):
        """The paper's Sec. 3.5 observation: L2 calibration scales better with workload size."""
        workload = all_range_queries_1d(64)
        strategy = eigen_design(workload).strategy
        privacy = PrivacyParams(0.5, 1e-4)
        gaussian_error = MatrixMechanism(strategy, privacy).expected_error(workload)
        laplace_error = expected_workload_error_l1(workload, strategy, privacy)
        # The eigen strategy is optimised for L2; under L1 calibration its
        # sensitivity (and hence error) is substantially larger.
        assert gaussian_error < laplace_error
