"""Tests for the experiment registry and the command-line harness."""

import io
import json

import pytest

from repro.cli import main
from repro.evaluation import available_experiments, get_experiment, load_records, run_experiment
from repro.exceptions import ReproError


class TestRegistry:
    def test_all_experiments_have_metadata(self):
        specs = available_experiments()
        assert len(specs) >= 8
        for spec in specs:
            assert spec.name
            assert spec.description
            assert spec.paper_artifact
            assert isinstance(spec.defaults, dict) or hasattr(spec.defaults, "keys")

    def test_get_experiment_unknown_name(self):
        with pytest.raises(ReproError):
            get_experiment("does-not-exist")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("example", bananas=3)

    def test_example_experiment(self):
        record = run_experiment("example")
        strategies = {row["strategy"] for row in record.rows}
        assert {"eigen-design", "wavelet", "identity", "lower-bound"} <= strategies
        errors = {row["strategy"]: row["error"] for row in record.rows}
        assert errors["eigen-design"] < errors["identity"]
        assert errors["eigen-design"] < errors["wavelet"]

    def test_range_absolute_small(self):
        record = run_experiment("range-absolute", cells=32, queries=16)
        eigen_rows = [row for row in record.rows if row["strategy"] == "eigen-design"]
        assert len(eigen_rows) == 2  # all-range and random-range
        for row in record.rows:
            if row["strategy"] == "eigen-design":
                assert row["ratio_to_bound"] < 1.35

    def test_marginal_absolute_small(self):
        record = run_experiment("marginal-absolute", dims=(4, 4, 4))
        errors = {row["strategy"]: row["error"] for row in record.rows}
        assert errors["eigen-design"] <= min(errors["fourier"], errors["datacube"]) * 1.0001

    def test_relative_range_on_synthetic_uniform(self):
        record = run_experiment(
            "relative-range", dataset="uniform", shape=(32,), trials=2, epsilon=1.0
        )
        assert len(record.rows) == 3
        for row in record.rows:
            assert row["mean_relative_error"] >= 0

    def test_alternative_workloads_small(self):
        record = run_experiment("alternative-workloads", cells=36)
        workloads = {row["workload"] for row in record.rows}
        assert "1d-cdf" in workloads and "permuted-1d-range" in workloads
        for row in record.rows:
            if row["workload"] == "permuted-1d-range":
                # Representation independence: the eigen design beats the
                # locality-dependent competitors on permuted inputs.
                assert row["best_ratio"] >= 1.0

    def test_optimizations_small(self):
        record = run_experiment("optimizations", cells=64)
        methods = {row["method"] for row in record.rows}
        assert "full eigen design" in methods
        assert "eigen separation" in methods
        assert "principal vectors" in methods
        full = next(r["error"] for r in record.rows if r["method"] == "full eigen design")
        bound = next(r["error"] for r in record.rows if r["method"] == "lower bound")
        assert bound <= full

    def test_design_queries_small(self):
        record = run_experiment("design-queries", cells=32)
        rows = {(row["workload"], row["design_set"]): row["error"] for row in record.rows}
        # The eigen design set is unaffected by permutation; the wavelet design set degrades.
        assert rows[("1d-range-permuted", "eigen-design")] == pytest.approx(
            rows[("1d-range", "eigen-design")], rel=1e-6
        )
        assert rows[("1d-range-permuted", "wavelet-design")] > rows[("1d-range", "wavelet-design")]

    def test_scalability_small(self):
        record = run_experiment("scalability", max_cells=32)
        cells = [row["cells"] for row in record.rows]
        assert cells == [16, 32]
        for row in record.rows:
            assert row["error"] >= row["bound"] * 0.99


class TestCli:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        assert "range-absolute" in out.getvalue()

    def test_info(self):
        out = io.StringIO()
        assert main(["info", "example"], out=out) == 0
        assert "Fig. 2" in out.getvalue()

    def test_info_unknown_experiment(self):
        out = io.StringIO()
        assert main(["info", "nope"], out=out) == 1

    def test_no_command_prints_help(self):
        out = io.StringIO()
        assert main([], out=out) == 2
        assert "usage" in out.getvalue().lower()

    def test_run_table_output(self):
        out = io.StringIO()
        assert main(["run", "example"], out=out) == 0
        assert "eigen-design" in out.getvalue()

    def test_run_with_overrides_and_json(self):
        out = io.StringIO()
        assert main(["run", "design-queries", "--set", "cells=16", "--format", "json"], out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["experiment"] == "design-queries"
        assert payload["parameters"]["cells"] == 16

    def test_run_csv_output(self):
        out = io.StringIO()
        assert main(["run", "example", "--format", "csv"], out=out) == 0
        assert out.getvalue().splitlines()[0].startswith("workload,strategy")

    def test_run_saves_results_file(self, tmp_path):
        out = io.StringIO()
        target = tmp_path / "example.json"
        assert main(["run", "example", "--output", str(target)], out=out) == 0
        records = load_records(target)
        assert records[0].experiment == "example"

    def test_bad_override_reports_error(self):
        out = io.StringIO()
        assert main(["run", "example", "--set", "nonsense"], out=out) == 1

    def test_unknown_override_key_reports_error(self):
        out = io.StringIO()
        assert main(["run", "example", "--set", "bananas=1"], out=out) == 1

    def test_bad_override_literal_type_reports_error(self, capsys):
        # A value that parses to the wrong type (epsilon=abc stays a string)
        # must come back as a usage error, not an uncaught traceback.
        out = io.StringIO()
        assert main(["run", "example", "--set", "epsilon=abc"], out=out) == 1
        assert "epsilon=abc" in capsys.readouterr().err

    def test_run_unknown_experiment_reports_error(self, capsys):
        out = io.StringIO()
        assert main(["run", "does-not-exist"], out=out) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestQueryEngineExperiment:
    def test_cold_warm_and_refusal_rows(self):
        record = run_experiment("query-engine", tuples=800, buckets=4)
        phases = {row["phase"]: row for row in record.rows}
        assert phases["cold plan"]["plan_cache_hit"] is False
        assert phases["warm plan-cache hit"]["plan_cache_hit"] is True
        # The warm session re-used the cold session's plan: one optimization.
        assert phases["warm plan-cache hit"]["plans_built"] == 1
        assert phases["released-estimate reuse"]["mechanism"].startswith("release-reuse")
        refused = phases["over-budget request"]
        assert "refused" in refused["mechanism"]
        assert refused["spent_epsilon"] == 0.0


SCHEMA_JSON = '{"gender": "categorical", "gpa": [1.0, 2.0, 3.0, 3.5, 4.0]}'
DATA_CSV = "gender,gpa\n" + "\n".join(
    f"{'M' if i % 2 else 'F'},{1.0 + (i % 30) / 10:.1f}" for i in range(200)
)


class TestCliQuery:
    @pytest.fixture
    def files(self, tmp_path):
        schema = tmp_path / "schema.json"
        schema.write_text(SCHEMA_JSON)
        data = tmp_path / "people.csv"
        data.write_text(DATA_CSV + "\n")
        return schema, data

    def test_query_end_to_end_table(self, files):
        schema, data = files
        out = io.StringIO()
        code = main(
            [
                "query", "--schema", str(schema), "--data", str(data),
                "--sql", "SELECT COUNT(*) FROM people GROUP BY gender",
                "--sql", "SELECT COUNT(*) FROM people WHERE gpa BETWEEN 2.0 AND 3.5",
                "--epsilon", "0.5", "--seed", "0",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "gender = 'M'" in text and "gender = 'F'" in text
        assert "mutually consistent" in text

    def test_query_json_output_is_consistent(self, files):
        schema, data = files
        out = io.StringIO()
        code = main(
            [
                "query", "--schema", str(schema), "--data", str(data),
                "--sql", "SELECT COUNT(*) FROM people",
                "--sql", "SELECT COUNT(*) FROM people GROUP BY gender",
                "--epsilon", "1.0", "--seed", "3", "--format", "json",
            ],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["mechanism"].startswith("matrix-mechanism")
        answers = [row["answer"] for row in payload["rows"]]
        # Total equals the sum of the gender marginal: one x_hat serves all.
        assert answers[0] == pytest.approx(answers[1] + answers[2], abs=1e-6)

    def test_query_sql_file(self, files, tmp_path):
        schema, data = files
        sql_file = tmp_path / "queries.sql"
        sql_file.write_text(
            "# analyst task\nSELECT COUNT(*) FROM people\n\n"
            "SELECT COUNT(*) FROM people WHERE gender = 'M'\n"
        )
        out = io.StringIO()
        code = main(
            [
                "query", "--schema", str(schema), "--data", str(data),
                "--sql-file", str(sql_file), "--epsilon", "0.5", "--seed", "1",
                "--format", "csv",
            ],
            out=out,
        )
        assert code == 0
        assert out.getvalue().splitlines()[0].startswith("query,")

    def test_query_without_statements_errors(self, files):
        schema, data = files
        out = io.StringIO()
        assert main(["query", "--schema", str(schema), "--data", str(data)], out=out) == 1

    def test_query_missing_schema_file_errors(self, files, capsys):
        _, data = files
        out = io.StringIO()
        code = main(
            ["query", "--schema", "/nonexistent.json", "--data", str(data),
             "--sql", "SELECT COUNT(*) FROM people"],
            out=out,
        )
        assert code == 1
        assert "cannot read schema file" in capsys.readouterr().err

    def test_query_invalid_schema_json_errors(self, files, tmp_path):
        _, data = files
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        out = io.StringIO()
        code = main(
            ["query", "--schema", str(bad), "--data", str(data),
             "--sql", "SELECT COUNT(*) FROM people"],
            out=out,
        )
        assert code == 1

    def test_query_unparsable_sql_errors(self, files):
        schema, data = files
        out = io.StringIO()
        code = main(
            ["query", "--schema", str(schema), "--data", str(data),
             "--sql", "DELETE FROM people", "--epsilon", "0.5"],
            out=out,
        )
        assert code == 1


class TestCliServe:
    @pytest.fixture
    def files(self, tmp_path):
        schema = tmp_path / "schema.json"
        schema.write_text(SCHEMA_JSON)
        data = tmp_path / "people.csv"
        data.write_text(DATA_CSV + "\n")
        return schema, data

    def test_serve_line_protocol_end_to_end(self, files, tmp_path):
        schema, data = files
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "SELECT COUNT(*) FROM people\n"
            '{"tenant": "a", "sql": "SELECT COUNT(*) FROM people GROUP BY gender", "epsilon": 0.4}\n'
            "{\"tenant\": \"a\", \"sql\": \"SELECT COUNT(*) FROM people WHERE gender = 'F'\"}\n"
            '{"tenant": "b", "sql": "SELECT COUNT(*) FROM people", "epsilon": 9.0}\n'
            "garbage {\n"
        )
        out = io.StringIO()
        code = main(
            [
                "serve", "--schema", str(schema), "--data", str(data),
                "--requests", str(requests), "--budget-epsilon", "1.0",
                "--workers", "2", "--seed", "0",
            ],
            out=out,
        )
        assert code == 0
        replies = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(replies) == 5
        assert replies[0]["tenant"] == "default" and replies[0]["spent"] is not None
        # Tenant a's follow-up runs after its marginal: free and consistent.
        assert replies[2]["served_from_release"] and replies[2]["spent"] is None
        marginal = dict(zip(replies[1]["labels"], replies[1]["answers"]))
        assert replies[2]["answers"][0] == pytest.approx(marginal["gender = 'F'"])
        # Tenant b's oversized request is refused without taking serving down.
        assert replies[3].get("refused") and "error" in replies[3]
        assert "error" in replies[4]

    def test_serve_state_roundtrip(self, files, tmp_path):
        """--state makes budgets and releases survive a server restart.

        Run 1 spends against the durable store; run 2 — a fresh process-like
        server over the same file — answers the same query free from the
        persisted release, and refuses a request the recovered spend no
        longer affords.
        """
        schema, data = files
        state = tmp_path / "state.db"
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"tenant": "a", "sql": "SELECT COUNT(*) FROM people GROUP BY gender", "epsilon": 0.8}\n'
        )
        out = io.StringIO()
        base = [
            "serve", "--schema", str(schema), "--data", str(data),
            "--budget-epsilon", "1.0", "--workers", "2", "--seed", "0",
            "--state", str(state),
        ]
        assert main(base + ["--requests", str(requests)], out=out) == 0
        [first] = [json.loads(line) for line in out.getvalue().splitlines()]
        assert first["spent"] is not None
        assert state.exists()

        rerun = tmp_path / "requests2.jsonl"
        rerun.write_text(
            '{"tenant": "a", "sql": "SELECT COUNT(*) FROM people GROUP BY gender"}\n'
            '{"tenant": "a", "sql": "SELECT COUNT(*) FROM people WHERE gpa >= 3.5", "epsilon": 0.5}\n'
        )
        out = io.StringIO()
        assert main(base + ["--requests", str(rerun)], out=out) == 0
        replies = [json.loads(line) for line in out.getvalue().splitlines()]
        # The release survived the restart: same query, zero marginal cost,
        # and the answers are bit-identical to run 1's release.
        assert replies[0]["served_from_release"] and replies[0]["spent"] is None
        assert replies[0]["answers"] == pytest.approx(first["answers"])
        # The 0.8 spend survived too: 0.5 more does not fit in 1.0.
        assert replies[1].get("refused") and "error" in replies[1]

    def test_serve_missing_requests_file_errors(self, files, capsys):
        schema, data = files
        out = io.StringIO()
        code = main(
            ["serve", "--schema", str(schema), "--data", str(data),
             "--requests", "/nonexistent.jsonl"],
            out=out,
        )
        assert code == 1
        assert "cannot read requests file" in capsys.readouterr().err
