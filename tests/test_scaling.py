"""Tests for repro.core.scaling (relative-error and importance scalings)."""

import numpy as np
import pytest

from repro import PrivacyParams, Workload, eigen_design, per_query_error
from repro.core import (
    normalize_for_relative_error,
    scale_by_expected_answers,
    scale_by_importance,
)
from repro.exceptions import WorkloadError
from repro.workloads import example_workload

PRIVACY = PrivacyParams(0.5, 1e-4)


class TestNormalizeForRelativeError:
    def test_rows_have_unit_norm(self):
        scaled = normalize_for_relative_error(example_workload())
        norms = np.linalg.norm(scaled.matrix, axis=1)
        np.testing.assert_allclose(norms, np.ones(scaled.query_count))

    def test_zero_rows_left_unchanged(self):
        workload = Workload(np.vstack([np.zeros(4), np.ones(4)]))
        scaled = normalize_for_relative_error(workload)
        np.testing.assert_array_equal(scaled.matrix[0], np.zeros(4))

    def test_original_not_modified(self):
        workload = example_workload()
        before = workload.matrix.copy()
        normalize_for_relative_error(workload)
        np.testing.assert_array_equal(workload.matrix, before)


class TestScaleByExpectedAnswers:
    def test_uniform_distribution_equalises_row_sums(self):
        workload = example_workload()
        scaled = scale_by_expected_answers(workload, np.ones(8))
        expected = np.abs(scaled.matrix) @ np.full(8, 1.0 / 8.0)
        np.testing.assert_allclose(expected, expected[0] * np.ones(len(expected)), rtol=1e-9)

    def test_skewed_distribution_downweights_popular_queries(self):
        # Two queries: one over a heavy cell, one over a light cell.
        workload = Workload(np.array([[1.0, 0.0], [0.0, 1.0]]))
        distribution = np.array([0.9, 0.1])
        scaled = scale_by_expected_answers(workload, distribution, floor_fraction=1e-9)
        # The query on the heavy cell is scaled down relative to the light one.
        assert np.linalg.norm(scaled.matrix[0]) < np.linalg.norm(scaled.matrix[1])

    def test_floor_prevents_infinite_scaling(self):
        workload = Workload(np.array([[1.0, 0.0], [0.0, 1.0]]))
        distribution = np.array([1.0, 0.0])
        scaled = scale_by_expected_answers(workload, distribution)
        assert np.all(np.isfinite(scaled.matrix))

    def test_rejects_negative_distribution(self):
        with pytest.raises(WorkloadError):
            scale_by_expected_answers(example_workload(), -np.ones(8))

    def test_rejects_zero_distribution(self):
        with pytest.raises(WorkloadError):
            scale_by_expected_answers(example_workload(), np.zeros(8))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            scale_by_expected_answers(example_workload(), np.ones(5))


class TestScaleByImportance:
    def test_importance_changes_design_focus(self):
        """Heavily weighting one query reduces its expected error after redesign."""
        workload = example_workload()
        importance = np.ones(workload.query_count)
        importance[7] = 100.0
        scaled = scale_by_importance(workload, importance)
        plain_design = eigen_design(workload).strategy
        weighted_design = eigen_design(scaled).strategy
        plain_error = per_query_error(workload, plain_design, PRIVACY)[7]
        weighted_error = per_query_error(workload, weighted_design, PRIVACY)[7]
        assert weighted_error <= plain_error * 1.001

    def test_uniform_importance_is_identity_transform(self):
        workload = example_workload()
        scaled = scale_by_importance(workload, np.full(workload.query_count, 4.0))
        np.testing.assert_allclose(scaled.matrix, 2.0 * workload.matrix)

    def test_rejects_nonpositive_importance(self):
        with pytest.raises(WorkloadError):
            scale_by_importance(example_workload(), np.zeros(8))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            scale_by_importance(example_workload(), np.ones(3))
