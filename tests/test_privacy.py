"""Tests for privacy parameters and noise calibration."""

import math

import pytest

from repro import PrivacyParams
from repro.core.privacy import gaussian_scale, laplace_scale, noise_variance_factor
from repro.exceptions import PrivacyError


class TestPrivacyParams:
    def test_defaults_match_paper(self):
        params = PrivacyParams()
        assert params.epsilon == 0.5
        assert params.delta == 1e-4

    def test_variance_factor_formula(self):
        params = PrivacyParams(0.5, 1e-4)
        expected = 2 * math.log(2 / 1e-4) / 0.25
        assert params.variance_factor == pytest.approx(expected)

    def test_variance_factor_requires_delta(self):
        with pytest.raises(PrivacyError):
            _ = PrivacyParams(0.5, 0.0).variance_factor

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(PrivacyError):
            PrivacyParams(0.0, 1e-4)

    def test_rejects_delta_out_of_range(self):
        with pytest.raises(PrivacyError):
            PrivacyParams(0.5, 1.5)

    def test_is_approximate(self):
        assert PrivacyParams(1.0, 1e-5).is_approximate
        assert not PrivacyParams(1.0, 0.0).is_approximate

    def test_compose_adds_budgets(self):
        combined = PrivacyParams(0.3, 1e-5).compose(PrivacyParams(0.2, 1e-5))
        assert combined.epsilon == pytest.approx(0.5)
        assert combined.delta == pytest.approx(2e-5)

    def test_split_divides_budget(self):
        part = PrivacyParams(1.0, 1e-4).split(4)
        assert part.epsilon == pytest.approx(0.25)
        assert part.delta == pytest.approx(2.5e-5)

    def test_split_rejects_bad_parts(self):
        with pytest.raises(PrivacyError):
            PrivacyParams(1.0, 1e-4).split(0)


class TestNoiseScales:
    def test_gaussian_scale_matches_prop2(self):
        # sigma = ||W||_2 sqrt(2 ln(2/delta)) / epsilon
        scale = gaussian_scale(2.0, 0.5, 1e-4)
        expected = 2.0 * math.sqrt(2 * math.log(2 / 1e-4)) / 0.5
        assert scale == pytest.approx(expected)

    def test_gaussian_scale_squares_to_variance_factor(self):
        params = PrivacyParams(0.7, 1e-5)
        assert params.gaussian_scale(1.0) ** 2 == pytest.approx(params.variance_factor)

    def test_gaussian_scale_requires_delta(self):
        with pytest.raises(PrivacyError):
            gaussian_scale(1.0, 0.5, 0.0)

    def test_gaussian_scale_rejects_negative_sensitivity(self):
        with pytest.raises(PrivacyError):
            gaussian_scale(-1.0, 0.5, 1e-4)

    def test_laplace_scale(self):
        assert laplace_scale(3.0, 0.5) == pytest.approx(6.0)

    def test_laplace_scale_rejects_bad_epsilon(self):
        with pytest.raises(PrivacyError):
            laplace_scale(1.0, 0.0)

    def test_noise_variance_factor_helper(self):
        assert noise_variance_factor(0.5, 1e-4) == pytest.approx(
            PrivacyParams(0.5, 1e-4).variance_factor
        )

    def test_scaling_with_epsilon(self):
        # Quadrupling epsilon cuts the noise scale by 4.
        assert gaussian_scale(1.0, 2.0, 1e-4) == pytest.approx(
            gaussian_scale(1.0, 0.5, 1e-4) / 4
        )
