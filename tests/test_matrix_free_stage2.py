"""Matrix-free stage-2 group columns, Krylov recycling and the singular CG path.

Property-based and acceptance coverage for the last dense gaps closed by the
operator subsystem:

* :class:`~repro.utils.operators.GroupColumnOperator` against the dense
  stage-2 group-column matrix it replaces (oracle tests at small ``n``, a
  no-densify monkeypatch guard at ``n = 4096``);
* Krylov recycling (:class:`~repro.utils.linalg.DeflationSpace` + Hutch++
  sketch reuse): a repeated ``_completed_trace`` evaluation of the same
  strategy must use measurably fewer PCG iterations than the first;
* the rank-deficient + huge-completion corner running through the
  null-space-projected singular CG formulation instead of dense.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.error as error_module
from repro import (
    PrivacyParams,
    eigen_design,
    eigen_query_separation,
    expected_workload_error,
)
from repro.core.error import (
    STOCHASTIC_TRACE_LAST,
    _stochastic_completed_trace,
    clear_trace_recyclers,  # noqa: F401 - exercised via error_module below
    workload_strategy_trace,
)
from repro.exceptions import SingularStrategyError
from repro.optimize import WeightingProblem, solve_weighting
from repro.utils.linalg import DeflationSpace, pcg_solve, trace_ratio
from repro.utils.operators import (
    EigenDiagOperator,
    GroupColumnOperator,
    KroneckerConstraints,
    KroneckerOperator,
)
from repro.workloads import all_range_queries

# Every test in this module runs once per available array backend: the
# numpy case is the default bit-for-bit path, the jax case exercises the
# optional backend against the same dense oracles (auto-skipped when jax
# is not installed).
pytestmark = pytest.mark.usefixtures("backend")

PRIVACY = PrivacyParams(0.5, 1e-4)


def random_group_operator(rng, sizes):
    """A GroupColumnOperator plus its dense group-column oracle."""
    grams = []
    for size in sizes:
        factor = rng.normal(size=(size, size))
        grams.append(factor.T @ factor)
    workload_op = KroneckerOperator(grams, symmetric=True)
    basis = workload_op.eigenbasis()
    keep = basis.sorted_values > 1e-10 * basis.sorted_values[0]
    positions = basis.order[keep]
    count = positions.shape[0]
    group_size = int(rng.integers(1, count + 1))
    groups = [
        np.arange(start, min(start + group_size, count))
        for start in range(0, count, group_size)
    ]
    constraints = KroneckerConstraints(basis, positions)
    group_positions = [positions[indexes] for indexes in groups]
    group_weights = [rng.uniform(0.1, 2.0, size=indexes.shape[0]) for indexes in groups]
    operator = GroupColumnOperator(basis, group_positions, group_weights)
    dense_constraints = (basis.queries_dense()[keep] ** 2).T
    dense = np.column_stack(
        [
            dense_constraints[:, indexes] @ weights
            for indexes, weights in zip(groups, group_weights)
        ]
    )
    return operator, dense


class TestGroupColumnOperator:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_actions_match_dense_oracle(self, seed):
        rng = np.random.default_rng(seed)
        operator, dense = random_group_operator(rng, [3, 4])
        assert operator.shape == dense.shape
        v = rng.uniform(0.1, 1.0, size=dense.shape[1])
        np.testing.assert_allclose(operator.matvec(v), dense @ v, atol=1e-10)
        mu = rng.uniform(size=dense.shape[0])
        np.testing.assert_allclose(operator.rmatvec(mu), dense.T @ mu, atol=1e-10)
        np.testing.assert_allclose(operator.column_maxes(), dense.max(axis=0), atol=1e-10)
        np.testing.assert_allclose(operator.column_sums(), dense.sum(axis=0), atol=1e-10)
        np.testing.assert_allclose(operator.row_sums(), dense.sum(axis=1), atol=1e-10)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_stage2_solve_matches_dense_solve(self, seed):
        # The stage-2 weighting problem solved against the operator must land
        # on the same optimum as against the dense group-column matrix.
        rng = np.random.default_rng(seed)
        operator, dense = random_group_operator(rng, [3, 3])
        costs = rng.uniform(0.5, 2.0, size=dense.shape[1])
        lazy = solve_weighting(
            WeightingProblem(costs=costs, constraints=operator), solver="dual-ascent"
        )
        oracle = solve_weighting(
            WeightingProblem(costs=costs, constraints=dense), solver="dual-ascent"
        )
        assert lazy.objective_value == pytest.approx(oracle.objective_value, rel=1e-4)

    def test_overlapping_groups_rejected(self):
        workload_op = KroneckerOperator([np.eye(4)], symmetric=True)
        basis = workload_op.eigenbasis()
        with pytest.raises(ValueError):
            GroupColumnOperator(
                basis,
                [np.array([0, 1]), np.array([1, 2])],
                [np.ones(2), np.ones(2)],
            )

    @given(st.integers(0, 2**31 - 1), st.integers(1, 12))
    @settings(max_examples=15, deadline=None)
    def test_separation_matches_dense_across_group_sizes(self, seed, group_size):
        workload = all_range_queries([4, 4])
        dense = eigen_query_separation(
            workload, group_size=group_size, factorized=False, complete=True
        )
        fact = eigen_query_separation(
            workload, group_size=group_size, factorized=True, complete=True
        )
        e_dense = expected_workload_error(workload, dense.strategy, PRIVACY)
        e_fact = expected_workload_error(workload, fact.strategy, PRIVACY)
        assert e_fact == pytest.approx(e_dense, rel=1e-6)

    def test_factorized_stage2_densifies_within_budget(self, monkeypatch):
        # The factorized/dense crossover: when the stage-2 group-column
        # matrix fits the materialisation budget the factorized path
        # densifies it, so stage 2 runs on the dense solver fast path
        # instead of a per-matvec GroupColumnOperator.
        import repro.core.reductions as reductions_module

        stage2_constraints = []
        real_solve = solve_weighting

        def recording_solve(problem, **kwargs):
            stage2_constraints.append(problem.constraints)
            return real_solve(problem, **kwargs)

        monkeypatch.setattr(reductions_module, "solve_weighting", recording_solve)
        workload = all_range_queries([16, 16, 16])
        result = eigen_query_separation(workload, group_size=512)
        assert result.method == "eigen-separation-factorized"
        assert result.diagnostics["groups"] > 1
        # Stage 2 must have run against the densified group-column matrix.
        assert any(isinstance(c, np.ndarray) and c.ndim == 2 for c in stage2_constraints)
        error = expected_workload_error(workload, result.strategy, PRIVACY)
        assert np.isfinite(error) and error > 0

    def test_no_group_column_densification_beyond_budget(self, monkeypatch):
        # Acceptance bar: beyond the materialisation budget the factorized
        # path allocates nothing of size Θ(n · groups) — every dense
        # materialisation entry point is patched to fail, and the stage-2
        # problem must be solved against a GroupColumnOperator.
        import repro.core.reductions as reductions_module
        from repro.utils import operators as ops

        def forbidden(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("dense materialisation during factorized stage 2")

        monkeypatch.setattr(ops.KroneckerOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.EigenDiagOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.KroneckerConstraints, "to_dense", forbidden)
        monkeypatch.setattr(ops.KroneckerEigenbasis, "queries_dense", forbidden)
        # Shrink the budget so n = 4096 sits beyond it, as 10**7 used to.
        monkeypatch.setattr(ops, "MATERIALIZATION_LIMIT", 1)
        stage2_constraints = []
        real_solve = solve_weighting

        def recording_solve(problem, **kwargs):
            stage2_constraints.append(problem.constraints)
            return real_solve(problem, **kwargs)

        monkeypatch.setattr(reductions_module, "solve_weighting", recording_solve)
        workload = all_range_queries([16, 16, 16])
        result = eigen_query_separation(workload, group_size=512)
        assert result.method == "eigen-separation-factorized"
        assert result.diagnostics["groups"] > 1
        # Stage 2 is the second-to-last solve (the last report uses the full
        # constraint operator); it must have run against the lazy operator.
        assert any(isinstance(c, GroupColumnOperator) for c in stage2_constraints)
        assert not any(isinstance(c, np.ndarray) and c.ndim == 2 for c in stage2_constraints)
        error = expected_workload_error(workload, result.strategy, PRIVACY)
        assert np.isfinite(error) and error > 0


class TestKrylovRecycling:
    def test_deflation_space_cuts_iterations(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(60, 60))
        matrix = matrix @ matrix.T + np.eye(60)
        rhs = rng.normal(size=(60, 4))
        space = DeflationSpace(max_vectors=16)
        first, second = {}, {}
        x1 = pcg_solve(lambda v: matrix @ v, rhs, deflation=space, stats=first)
        x2 = pcg_solve(lambda v: matrix @ v, rhs, deflation=space, stats=second)
        assert second["column_iterations"] < first["column_iterations"]
        np.testing.assert_allclose(x1, np.linalg.solve(matrix, rhs), atol=1e-6)
        np.testing.assert_allclose(x2, np.linalg.solve(matrix, rhs), atol=1e-6)

    def test_deflation_guess_helps_related_rhs(self):
        # A new right-hand side inside the span of absorbed solutions starts
        # (nearly) converged even though it was never solved before.
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(50, 50))
        matrix = matrix @ matrix.T + np.eye(50)
        rhs = rng.normal(size=(50, 3))
        space = DeflationSpace(max_vectors=8)
        pcg_solve(lambda v: matrix @ v, rhs, deflation=space)
        combined = rhs @ rng.normal(size=3)
        stats = {}
        solved = pcg_solve(lambda v: matrix @ v, combined, deflation=space, stats=stats)
        assert stats["iterations"] <= 2
        np.testing.assert_allclose(solved, np.linalg.solve(matrix, combined), atol=1e-6)

    def test_repeated_completed_trace_uses_fewer_iterations(self, monkeypatch):
        # Acceptance bar: re-evaluating the same completed strategy's error
        # trace (the budget-management loop) must use measurably fewer PCG
        # iterations than the first evaluation — here: none at all.
        monkeypatch.setattr(error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)())
        workload = all_range_queries([16, 16, 16])
        design = eigen_design(workload, factorized=True, complete=True)
        first = workload_strategy_trace(workload, design.strategy)
        first_stats = dict(STOCHASTIC_TRACE_LAST)
        second = workload_strategy_trace(workload, design.strategy)
        second_stats = dict(STOCHASTIC_TRACE_LAST)
        assert first_stats["column_iterations"] > 0
        assert not first_stats["recycled_sketch"]
        assert second_stats["recycled_sketch"]
        assert second_stats["column_iterations"] <= first_stats["column_iterations"] // 10
        assert second == pytest.approx(first, rel=1e-6)

    def test_recycle_knob_disables_reuse(self, monkeypatch):
        monkeypatch.setattr(error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)())
        monkeypatch.setitem(error_module.STOCHASTIC_TRACE, "recycle", False)
        rng = np.random.default_rng(5)
        gram = rng.normal(size=(5, 5))
        workload_op = KroneckerOperator([gram.T @ gram], symmetric=True)
        basis = workload_op.eigenbasis()
        spectrum = rng.uniform(0.5, 2.0, size=basis.size)
        diag = rng.uniform(0.1, 1.0, size=basis.size)
        strategy_op = EigenDiagOperator(basis, spectrum, diag)
        _stochastic_completed_trace(workload_op, strategy_op)
        first = dict(STOCHASTIC_TRACE_LAST)
        _stochastic_completed_trace(workload_op, strategy_op)
        second = dict(STOCHASTIC_TRACE_LAST)
        assert not second["recycled_sketch"]
        assert second["column_iterations"] == first["column_iterations"]
        assert not error_module._TRACE_RECYCLERS

    def test_seed_change_starts_cold(self, monkeypatch):
        # Changing the estimator seed must NOT reuse the old seed's sketch:
        # replicates would be silently correlated.  The recycled seed-1
        # estimate must equal a cold seed-1 estimate exactly.
        monkeypatch.setattr(error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)())
        rng = np.random.default_rng(9)
        gram = rng.normal(size=(6, 6))
        workload_op = KroneckerOperator([gram.T @ gram], symmetric=True)
        basis = workload_op.eigenbasis()
        strategy_op = EigenDiagOperator(
            basis,
            rng.uniform(0.5, 2.0, size=basis.size),
            rng.uniform(0.1, 1.0, size=basis.size),
        )
        _stochastic_completed_trace(workload_op, strategy_op)
        monkeypatch.setitem(error_module.STOCHASTIC_TRACE, "seed", 1)
        replicate = _stochastic_completed_trace(workload_op, strategy_op)
        assert not STOCHASTIC_TRACE_LAST["recycled_sketch"]
        monkeypatch.setitem(error_module.STOCHASTIC_TRACE, "recycle", False)
        cold = _stochastic_completed_trace(workload_op, strategy_op)
        assert replicate == pytest.approx(cold, rel=1e-9)

    def test_clear_trace_recyclers_releases_state(self, monkeypatch):
        monkeypatch.setattr(error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)())
        rng = np.random.default_rng(10)
        gram = rng.normal(size=(4, 4))
        workload_op = KroneckerOperator([gram.T @ gram], symmetric=True)
        basis = workload_op.eigenbasis()
        strategy_op = EigenDiagOperator(
            basis,
            rng.uniform(0.5, 2.0, size=basis.size),
            rng.uniform(0.1, 1.0, size=basis.size),
        )
        _stochastic_completed_trace(workload_op, strategy_op)
        assert error_module._TRACE_RECYCLERS
        error_module.clear_trace_recyclers()
        assert not error_module._TRACE_RECYCLERS

    def test_recycler_registry_is_bounded(self, monkeypatch):
        monkeypatch.setattr(error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)())
        rng = np.random.default_rng(6)
        for _ in range(error_module._TRACE_RECYCLER_LIMIT + 3):
            gram = rng.normal(size=(4, 4))
            workload_op = KroneckerOperator([gram.T @ gram], symmetric=True)
            basis = workload_op.eigenbasis()
            strategy_op = EigenDiagOperator(
                basis,
                rng.uniform(0.5, 2.0, size=basis.size),
                rng.uniform(0.1, 1.0, size=basis.size),
            )
            _stochastic_completed_trace(workload_op, strategy_op)
        assert len(error_module._TRACE_RECYCLERS) <= error_module._TRACE_RECYCLER_LIMIT


class TestRankDeficientStochasticTrace:
    @staticmethod
    def rank_deficient_pair(rng, sizes):
        factors = []
        for size in sizes:
            factor = rng.normal(size=(size, size))
            factor[:, 0] = 0.0
            factors.append(factor)
        grams = [f.T @ f for f in factors]
        workload_op = KroneckerOperator(grams, symmetric=True)
        basis = workload_op.eigenbasis()
        values = basis.values_natural
        spectrum = np.where(
            values > 1e-10 * values.max(), rng.uniform(0.5, 2.0, size=basis.size), 0.0
        )
        r = int(rng.integers(1, min(6, basis.size)))
        cells = rng.choice(basis.size, size=r, replace=False)
        diag = np.zeros(basis.size)
        diag[cells] = rng.uniform(0.1, 1.0, size=r)
        return workload_op, EigenDiagOperator(basis, spectrum, diag)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matches_dense_pseudo_inverse_oracle(self, seed):
        # The null-space-projected singular CG formulation must agree with
        # the dense pinv oracle once the sketch spans the whole space.
        rng = np.random.default_rng(seed)
        workload_op, strategy_op = self.rank_deficient_pair(rng, [3, 4])
        old = dict(error_module.STOCHASTIC_TRACE)
        try:
            error_module.STOCHASTIC_TRACE["samples"] = 3 * strategy_op.shape[0]
            error_module.STOCHASTIC_TRACE["recycle"] = False
            structured = _stochastic_completed_trace(workload_op, strategy_op)
        finally:
            error_module.STOCHASTIC_TRACE.update(old)
        dense = trace_ratio(workload_op.to_dense(), strategy_op.to_dense())
        assert STOCHASTIC_TRACE_LAST["rank_deficient"]
        assert structured == pytest.approx(dense, rel=1e-6)

    def test_tiny_alive_coordinates_not_misclassified(self):
        # A supported strategy whose basis diagonal spans a huge dynamic
        # range (tiny-but-alive spectrum entries next to enormous completion
        # weights) must not have its alive coordinates reclassified as
        # unreachable dead space — that would raise a spurious
        # SingularStrategyError and degrade the Jacobi preconditioner.
        basis = KroneckerOperator([np.eye(8)], symmetric=True).eigenbasis()
        w = np.array([0.3, 0.4, 0.5, 0.1, 0.2, 0.3, 0.0, 0.0])
        workload_op = KroneckerOperator([np.diag(w)], symmetric=True)
        spectrum = np.array([1.0, 1.0, 1.0, 1e-8, 1e-8, 1e-8, 0.0, 0.0])
        diag = np.array([1e6, 1e6, 1e6, 0.0, 0.0, 0.0, 0.0, 0.0])
        strategy_op = EigenDiagOperator(basis, spectrum, diag)
        old = dict(error_module.STOCHASTIC_TRACE)
        try:
            error_module.STOCHASTIC_TRACE["samples"] = 3 * basis.size
            error_module.STOCHASTIC_TRACE["recycle"] = False
            structured = _stochastic_completed_trace(workload_op, strategy_op)
        finally:
            error_module.STOCHASTIC_TRACE.update(old)
        oracle = float(np.sum(w[:6] / (spectrum + diag)[:6]))
        assert structured == pytest.approx(oracle, rel=1e-6)
        assert STOCHASTIC_TRACE_LAST["unconverged"] == 0

    def test_unsupported_workload_raises(self):
        # Workload mass on the unreachable dead space (zero spectrum, no
        # completion row anywhere near it) must raise, not return garbage.
        rng = np.random.default_rng(7)
        gram = rng.normal(size=(6, 6))
        workload_op = KroneckerOperator([gram.T @ gram], symmetric=True)
        basis = workload_op.eigenbasis()
        spectrum = np.zeros(basis.size)
        diag = np.zeros(basis.size)
        diag[0] = 1.0
        strategy_op = EigenDiagOperator(basis, spectrum, diag)
        with pytest.raises(SingularStrategyError):
            _stochastic_completed_trace(workload_op, strategy_op)

    def test_rank_deficient_huge_completion_no_densify(self, monkeypatch):
        # Acceptance bar: the rank-deficient + huge-completion corner used to
        # fall back to dense (and raise beyond the budget); it must now run
        # fully matrix-free through the singular CG path.
        from repro.utils import operators as ops

        def forbidden(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("dense materialisation in the rank-deficient corner")

        monkeypatch.setattr(ops.KroneckerOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.EigenDiagOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.KroneckerEigenbasis, "queries_dense", forbidden)
        monkeypatch.setattr(error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)())
        rng = np.random.default_rng(8)
        factors = []
        for size in (16, 16, 16):
            factor = rng.normal(size=(size, size))
            factor[:, 0] = 0.0  # rank-deficient per-attribute workload
            factors.append(factor)
        grams = [f.T @ f for f in factors]
        workload_op = KroneckerOperator(grams, symmetric=True)
        basis = workload_op.eigenbasis()
        values = basis.values_natural
        spectrum = np.where(
            values > 1e-10 * values.max(), rng.uniform(0.5, 2.0, size=basis.size), 0.0
        )
        diag = rng.uniform(0.1, 1.0, size=basis.size)  # huge completion rank
        strategy_op = EigenDiagOperator(basis, spectrum, diag)
        from repro.core.error import _trace_core

        value = _trace_core(workload_op, strategy_op)
        assert np.isfinite(value) and value > 0
        assert STOCHASTIC_TRACE_LAST["rank_deficient"]
        assert STOCHASTIC_TRACE_LAST["unconverged"] == 0
