"""Tests for the weighting-problem formulation (Program 1 reduction)."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimize import WeightingProblem


@pytest.fixture
def simple_problem() -> WeightingProblem:
    """Two design queries, two constraints (a tiny orthonormal design)."""
    costs = np.array([4.0, 1.0])
    constraints = np.array([[1.0, 0.0], [0.0, 1.0]])
    return WeightingProblem(costs=costs, constraints=constraints)


class TestValidation:
    def test_dimension_mismatch(self):
        with pytest.raises(OptimizationError):
            WeightingProblem(costs=np.ones(3), constraints=np.ones((2, 2)))

    def test_negative_costs_rejected(self):
        with pytest.raises(OptimizationError):
            WeightingProblem(costs=np.array([-1.0]), constraints=np.ones((1, 1)))

    def test_negative_constraints_rejected(self):
        with pytest.raises(OptimizationError):
            WeightingProblem(costs=np.ones(1), constraints=-np.ones((1, 1)))

    def test_unconstrained_positive_cost_rejected(self):
        with pytest.raises(OptimizationError):
            WeightingProblem(costs=np.array([1.0, 1.0]), constraints=np.array([[1.0, 0.0]]))

    def test_power_below_one_rejected(self):
        with pytest.raises(OptimizationError):
            WeightingProblem(costs=np.ones(1), constraints=np.ones((1, 1)), power=0.5)

    def test_sizes(self, simple_problem):
        assert simple_problem.variable_count == 2
        assert simple_problem.constraint_count == 2


class TestPrimal:
    def test_objective_value(self, simple_problem):
        assert simple_problem.objective(np.array([2.0, 1.0])) == pytest.approx(4 / 2 + 1 / 1)

    def test_objective_infinite_at_zero_weight(self, simple_problem):
        assert simple_problem.objective(np.array([0.0, 1.0])) == float("inf")

    def test_objective_ignores_zero_cost_terms(self):
        problem = WeightingProblem(costs=np.array([0.0, 1.0]), constraints=np.eye(2))
        assert problem.objective(np.array([0.0, 2.0])) == pytest.approx(0.5)

    def test_power_two_objective(self):
        problem = WeightingProblem(costs=np.array([8.0]), constraints=np.ones((1, 1)), power=2.0)
        assert problem.objective(np.array([2.0])) == pytest.approx(2.0)

    def test_feasibility_helpers(self, simple_problem):
        weights = np.array([2.0, 0.5])
        assert simple_problem.max_violation(weights) == pytest.approx(1.0)
        scaled = simple_problem.scale_to_feasible(weights)
        assert simple_problem.max_violation(scaled) <= 1e-12

    def test_scale_to_feasible_pushes_interior_points_to_boundary(self, simple_problem):
        # Scaling an interior point up to the boundary can only reduce the
        # objective, so the helper always returns a boundary point.
        weights = np.array([0.5, 0.5])
        scaled = simple_problem.scale_to_feasible(weights)
        np.testing.assert_allclose(scaled, [1.0, 1.0])
        assert simple_problem.objective(scaled) <= simple_problem.objective(weights)

    def test_initial_weights_feasible(self, simple_problem):
        weights = simple_problem.initial_weights()
        assert simple_problem.max_violation(weights) < 0


class TestDual:
    def test_dual_value_is_lower_bound(self, simple_problem):
        # Optimal: u = (1, 1) with objective 5 (both constraints tight).
        for dual in (np.ones(2), np.array([0.5, 2.0]), np.array([3.0, 0.1])):
            assert simple_problem.dual_value(dual) <= 5.0 + 1e-9

    def test_dual_optimum_closes_gap(self, simple_problem):
        # At the optimum mu = c / u^2 per the KKT conditions: mu = (4, 1).
        assert simple_problem.dual_value(np.array([4.0, 1.0])) == pytest.approx(5.0)

    def test_gradient_zero_at_optimum(self, simple_problem):
        gradient = simple_problem.dual_gradient(np.array([4.0, 1.0]))
        np.testing.assert_allclose(gradient, 0.0, atol=1e-12)

    def test_hessian_negative_semidefinite(self, simple_problem, rng):
        dual = rng.uniform(0.5, 2.0, size=2)
        hessian = simple_problem.dual_hessian(dual)
        assert np.all(np.linalg.eigvalsh(hessian) <= 1e-12)

    def test_gradient_matches_finite_differences(self, rng):
        costs = rng.uniform(0.5, 3.0, size=4)
        constraints = rng.uniform(0.0, 1.0, size=(5, 4))
        constraints[0] += 0.5  # make sure every variable is constrained
        problem = WeightingProblem(costs=costs, constraints=constraints)
        dual = rng.uniform(0.5, 1.5, size=5)
        gradient = problem.dual_gradient(dual)
        step = 1e-6
        for index in range(5):
            bumped = dual.copy()
            bumped[index] += step
            numerical = (problem.dual_value(bumped) - problem.dual_value(dual)) / step
            assert gradient[index] == pytest.approx(numerical, rel=1e-3, abs=1e-5)

    def test_certificate(self, simple_problem):
        primal, dual, gap = simple_problem.certificate(np.array([1.0, 1.0]), np.array([4.0, 1.0]))
        assert primal == pytest.approx(5.0)
        assert gap == pytest.approx(0.0, abs=1e-9)
