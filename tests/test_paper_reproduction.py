"""Integration tests tying the library to the paper's headline claims.

These tests check the *shape* of the paper's results (who wins, by roughly
what factor, ratios to the lower bound) at reduced domain sizes so the suite
stays fast; the full-size experiments live under ``benchmarks/``.
"""

import numpy as np
import pytest

from repro import (
    PrivacyParams,
    eigen_design,
    expected_workload_error,
    minimum_error_bound,
)
from repro.domain import Domain
from repro.strategies import (
    datacube_strategy,
    fourier_strategy,
    hierarchical_strategy,
    identity_strategy,
    wavelet_strategy,
    workload_strategy,
)
from repro.workloads import (
    all_range_queries,
    all_range_queries_1d,
    cdf_workload,
    example_workload,
    kway_marginals,
    kway_range_marginals,
    marginal_attribute_sets,
    permuted_workload,
    random_predicate_queries,
    random_range_queries,
)

PRIVACY = PrivacyParams(epsilon=0.5, delta=1e-4)


class TestExample4:
    """Fig. 2 / Example 4: identity vs wavelet vs adaptive strategy on the Fig. 1 workload.

    The paper reports errors 45.36 (identity), 34.62 (wavelet), 29.79
    (adaptive) and a lower bound of 29.18.  Our noise constant differs by a
    fixed factor (see DESIGN.md), so we check the ratios, which are
    constant-free.
    """

    @pytest.fixture(scope="class")
    def errors(self):
        workload = example_workload()
        eigen = eigen_design(workload).strategy
        return {
            "identity": expected_workload_error(workload, identity_strategy(8), PRIVACY),
            "wavelet": expected_workload_error(workload, wavelet_strategy(8), PRIVACY),
            "eigen": expected_workload_error(workload, eigen, PRIVACY),
            "bound": minimum_error_bound(workload, PRIVACY),
        }

    def test_ordering_matches_paper(self, errors):
        assert errors["eigen"] < errors["wavelet"] < errors["identity"]

    def test_identity_to_wavelet_ratio(self, errors):
        # Paper: 45.36 / 34.62 = 1.31
        assert errors["identity"] / errors["wavelet"] == pytest.approx(1.31, abs=0.03)

    def test_wavelet_to_eigen_ratio(self, errors):
        # Paper: 34.62 / 29.79 = 1.16
        assert errors["wavelet"] / errors["eigen"] == pytest.approx(1.16, abs=0.03)

    def test_eigen_close_to_bound(self, errors):
        # Paper: 29.79 / 29.18 = 1.02
        assert errors["eigen"] / errors["bound"] == pytest.approx(1.02, abs=0.02)


class TestFig3aRangeWorkloads:
    """Fig. 3(a): eigen design beats wavelet and hierarchical on range workloads."""

    @pytest.mark.parametrize("dims", [[64], [8, 8], [4, 4, 4]])
    def test_all_range_ordering(self, dims):
        workload = all_range_queries(dims)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        wavelet_error = expected_workload_error(workload, wavelet_strategy(dims), PRIVACY)
        hierarchical_error = expected_workload_error(workload, hierarchical_strategy(dims), PRIVACY)
        bound = minimum_error_bound(workload, PRIVACY)
        assert eigen_error < min(wavelet_error, hierarchical_error)
        # Paper: improvement factor 1.2 - 2.1 over the best competitor and
        # within 1.3x of the lower bound.
        assert min(wavelet_error, hierarchical_error) / eigen_error > 1.1
        assert eigen_error / bound < 1.3

    def test_random_range_ordering(self):
        workload = random_range_queries([8, 8], 200, random_state=0)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        wavelet_error = expected_workload_error(workload, wavelet_strategy([8, 8]), PRIVACY)
        hierarchical_error = expected_workload_error(workload, hierarchical_strategy([8, 8]), PRIVACY)
        assert eigen_error < min(wavelet_error, hierarchical_error)


class TestFig3cMarginalWorkloads:
    """Fig. 3(c): eigen design beats Fourier and DataCube on marginal workloads."""

    @pytest.mark.parametrize("dims", [[4, 4, 4], [8, 8, 4]])
    def test_two_way_marginals(self, dims):
        domain = Domain(dims)
        workload = kway_marginals(domain, 2)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        fourier_error = expected_workload_error(workload, fourier_strategy(domain, 2), PRIVACY)
        datacube_error = expected_workload_error(
            workload, datacube_strategy(domain, marginal_attribute_sets(domain, 2)), PRIVACY
        )
        bound = minimum_error_bound(workload, PRIVACY)
        assert eigen_error <= min(fourier_error, datacube_error) + 1e-9
        # Paper: the eigen design essentially achieves the lower bound here.
        assert eigen_error / bound < 1.05


class TestTable2AlternativeWorkloads:
    """Table 2: the eigen design adapts where fixed-basis competitors degrade."""

    def test_permuted_range_workload(self):
        workload = permuted_workload(all_range_queries_1d(64), random_state=5)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        wavelet_error = expected_workload_error(workload, wavelet_strategy(64), PRIVACY)
        hierarchical_error = expected_workload_error(workload, hierarchical_strategy(64), PRIVACY)
        bound = minimum_error_bound(workload, PRIVACY)
        # Paper: large improvement (9.6x - 13.2x at n=2048) and ratio ~1 to bound.
        assert min(wavelet_error, hierarchical_error) / eigen_error > 2.0
        assert eigen_error / bound < 1.1

    def test_one_way_range_marginals(self):
        domain = Domain([8, 8, 4])
        workload = kway_range_marginals(domain, 1)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        fourier_error = expected_workload_error(workload, fourier_strategy(domain, 1), PRIVACY)
        datacube_error = expected_workload_error(
            workload, datacube_strategy(domain, marginal_attribute_sets(domain, 1)), PRIVACY
        )
        assert eigen_error < min(fourier_error, datacube_error)

    def test_cdf_workload_close_to_competitors(self):
        # Table 2 reports only a marginal win on the CDF workload.
        workload = cdf_workload(64)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        wavelet_error = expected_workload_error(workload, wavelet_strategy(64), PRIVACY)
        hierarchical_error = expected_workload_error(workload, hierarchical_strategy(64), PRIVACY)
        assert eigen_error <= min(wavelet_error, hierarchical_error) * 1.05

    def test_predicate_workload(self):
        workload = random_predicate_queries(64, 256, random_state=0)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        wavelet_error = expected_workload_error(workload, wavelet_strategy(64), PRIVACY)
        bound = minimum_error_bound(workload, PRIVACY)
        assert eigen_error < wavelet_error
        assert eigen_error / bound < 1.1


class TestWorkloadAsStrategyIsSuboptimal:
    """The motivating observation: asking exactly what you want is not optimal."""

    def test_eigen_design_beats_workload_strategy(self):
        workload = all_range_queries_1d(32)
        direct = expected_workload_error(workload, workload_strategy(workload), PRIVACY)
        adaptive = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        assert adaptive < direct
