"""Tests for repro.relational.vectorize and repro.relational.builder."""

import numpy as np
import pytest

from repro import MatrixMechanism, PrivacyParams, eigen_design
from repro.domain.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.exceptions import RelationalError, WorkloadError
from repro.relational import (
    Comparison,
    Relation,
    WorkloadBuilder,
    bucket_indexes,
    data_vector,
    infer_schema,
    relation_from_histogram,
    sample_relation,
)


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            CategoricalAttribute("gender", ["M", "F"]),
            NumericAttribute("gpa", [1.0, 2.0, 3.0, 3.5, 4.0]),
        ]
    )


@pytest.fixture
def students() -> Relation:
    rng = np.random.default_rng(11)
    return Relation(
        {
            "gender": rng.choice(["M", "F"], size=400).tolist(),
            "gpa": rng.uniform(1.0, 3.999, size=400),
        }
    )


class TestBucketIndexes:
    def test_categorical(self, schema, students):
        indexes = bucket_indexes(students, schema.attributes[0])
        genders = students.column("gender")
        assert np.all((indexes == 0) == (genders == "M"))

    def test_numeric(self, schema, students):
        indexes = bucket_indexes(students, schema.attributes[1])
        gpa = students.column("gpa")
        assert np.all(indexes[(gpa >= 3.0) & (gpa < 3.5)] == 2)

    def test_out_of_domain_categorical_raises(self, schema):
        relation = Relation({"gender": ["X"], "gpa": [2.0]})
        with pytest.raises(RelationalError):
            bucket_indexes(relation, schema.attributes[0])

    def test_out_of_domain_numeric_raises(self, schema):
        relation = Relation({"gender": ["M"], "gpa": [5.0]})
        with pytest.raises(RelationalError):
            bucket_indexes(relation, schema.attributes[1])


class TestDataVector:
    def test_total_preserved(self, schema, students):
        x = data_vector(students, schema)
        assert x.shape == (8,)
        assert x.sum() == 400

    def test_matches_schema_loop_implementation(self, schema, students):
        fast = data_vector(students, schema)
        slow = schema.data_vector(students.to_records())
        np.testing.assert_array_equal(fast, slow)

    def test_empty_relation_gives_zero_vector(self, schema):
        relation = Relation({"gender": ["M"], "gpa": [2.0]}).select(np.zeros(1, dtype=bool))
        np.testing.assert_array_equal(data_vector(relation, schema), np.zeros(8))

    def test_cell_ordering_is_row_major(self, schema):
        relation = Relation({"gender": ["F"], "gpa": [1.5]})
        x = data_vector(relation, schema)
        # Female is bucket 1 of the first attribute, gpa 1.5 is bucket 0.
        assert x[4] == 1.0
        assert x.sum() == 1.0


class TestInferSchema:
    def test_categorical_and_equi_width(self, students):
        schema = infer_schema(students, {"gender": "categorical", "gpa": 5})
        assert schema.domain.shape == (2, 5)
        x = data_vector(students, schema)
        assert x.sum() == 400

    def test_explicit_edges(self, students):
        schema = infer_schema(students, {"gpa": [1.0, 2.0, 4.0]})
        assert schema.domain.shape == (2,)

    def test_explicit_categorical_values(self, students):
        schema = infer_schema(students, {"gender": ["M", "F"]})
        assert schema.attributes[0].size == 2

    def test_attribute_order_follows_spec(self, students):
        schema = infer_schema(students, {"gpa": 4, "gender": "categorical"})
        assert schema.domain.names == ("gpa", "gender")

    def test_rejects_empty_spec(self, students):
        with pytest.raises(RelationalError):
            infer_schema(students, {})

    def test_rejects_unknown_mode(self, students):
        with pytest.raises(RelationalError):
            infer_schema(students, {"gender": "one-hot"})

    def test_rejects_equi_width_on_strings(self, students):
        with pytest.raises(RelationalError):
            infer_schema(students, {"gender": 4})

    def test_rejects_empty_bucket_list(self, students):
        with pytest.raises(RelationalError):
            infer_schema(students, {"gpa": []})

    def test_constant_column_still_buckets(self):
        relation = Relation({"value": [3.0, 3.0, 3.0]})
        schema = infer_schema(relation, {"value": 2})
        x = data_vector(relation, schema)
        assert x.sum() == 3


class TestRelationFromHistogram:
    def test_round_trip(self, schema, students):
        x = data_vector(students, schema)
        rebuilt = relation_from_histogram(schema, x, random_state=3)
        np.testing.assert_array_equal(data_vector(rebuilt, schema), x)

    def test_counts_are_rounded(self, schema):
        counts = np.zeros(8)
        counts[0] = 2.4
        counts[7] = 1.6
        relation = relation_from_histogram(schema, counts, random_state=0)
        assert relation.row_count == 4

    def test_rejects_negative_counts(self, schema):
        counts = np.zeros(8)
        counts[0] = -1
        with pytest.raises(RelationalError):
            relation_from_histogram(schema, counts)

    def test_rejects_wrong_length(self, schema):
        with pytest.raises(RelationalError):
            relation_from_histogram(schema, np.ones(5))

    def test_rejects_all_zero(self, schema):
        with pytest.raises(RelationalError):
            relation_from_histogram(schema, np.zeros(8))

    def test_sample_relation_total(self, schema):
        relation = sample_relation(schema, 250, random_state=5)
        assert relation.row_count == 250

    def test_sample_relation_respects_distribution(self, schema):
        probabilities = np.zeros(8)
        probabilities[3] = 1.0
        relation = sample_relation(schema, 50, probabilities, random_state=5)
        x = data_vector(relation, schema)
        assert x[3] == 50

    def test_sample_relation_rejects_bad_probabilities(self, schema):
        with pytest.raises(RelationalError):
            sample_relation(schema, 10, np.zeros(8))
        with pytest.raises(RelationalError):
            sample_relation(schema, 10, -np.ones(8))
        with pytest.raises(RelationalError):
            sample_relation(schema, 0)


class TestWorkloadBuilder:
    def test_fig1_workload_reconstruction(self, schema):
        """The Fig. 1(b) example workload can be assembled through the builder."""
        male = Comparison("gender", "==", "M")
        female = Comparison("gender", "==", "F")
        builder = (
            WorkloadBuilder(schema, name="fig1")
            .add_total()
            .add_predicate(male, label="male students")
            .add_predicate(female, label="female students")
            .add_sql("SELECT COUNT(*) FROM s WHERE gpa < 3.0")
            .add_sql("SELECT COUNT(*) FROM s WHERE gpa >= 3.0")
            .add_sql("SELECT COUNT(*) FROM s WHERE gender = 'F' AND gpa >= 3.0")
            .add_sql("SELECT COUNT(*) FROM s WHERE gender = 'M' AND gpa < 3.0")
            .add_difference(male, female, label="male - female")
        )
        workload, labels = builder.build()
        assert workload.shape == (8, 8)
        assert labels[0] == "total"
        assert workload.sensitivity_l2 == pytest.approx(np.sqrt(5.0))

    def test_add_marginal(self, schema):
        workload, labels = WorkloadBuilder(schema).add_marginal(["gpa"]).build()
        assert workload.shape == (4, 8)
        assert all("marginal" in label for label in labels)

    def test_add_identity(self, schema):
        workload, _ = WorkloadBuilder(schema).add_identity().build()
        np.testing.assert_array_equal(workload.matrix, np.eye(8))

    def test_add_range_marginal_count(self, schema):
        workload, _ = WorkloadBuilder(schema).add_range_marginal("gpa").build()
        assert workload.query_count == 4 * 5 // 2

    def test_add_cdf(self, schema):
        workload, _ = WorkloadBuilder(schema).add_cdf("gpa").build()
        assert workload.query_count == 4
        np.testing.assert_array_equal(workload.matrix[-1], np.ones(8))

    def test_add_condition(self, schema):
        workload, labels = (
            WorkloadBuilder(schema).add_condition({"gpa": (2, 3)}, label="high gpa").build()
        )
        np.testing.assert_array_equal(workload.matrix[0], [0, 0, 1, 1, 0, 0, 1, 1])
        assert labels == ["high gpa"]

    def test_add_vector_validates_shape(self, schema):
        with pytest.raises(WorkloadError):
            WorkloadBuilder(schema).add_vector(np.ones(5))

    def test_add_vector_rejects_nan(self, schema):
        row = np.ones(8)
        row[0] = np.nan
        with pytest.raises(WorkloadError):
            WorkloadBuilder(schema).add_vector(row)

    def test_build_empty_raises(self, schema):
        with pytest.raises(RelationalError):
            WorkloadBuilder(schema).build()

    def test_normalized_build(self, schema):
        workload, _ = WorkloadBuilder(schema).add_total().add_identity().build(normalize=True)
        norms = np.linalg.norm(workload.matrix, axis=1)
        np.testing.assert_allclose(norms, np.ones(9))

    def test_labels_align_with_rows(self, schema):
        builder = WorkloadBuilder(schema).add_total().add_marginal(["gender"])
        workload, labels = builder.build()
        assert len(labels) == workload.query_count
        assert builder.query_count == workload.query_count

    def test_end_to_end_private_answers(self, schema, students):
        """Builder workload + eigen design + matrix mechanism gives consistent answers."""
        workload, _ = (
            WorkloadBuilder(schema)
            .add_total()
            .add_marginal(["gender"])
            .add_cdf("gpa")
            .build()
        )
        x = data_vector(students, schema)
        design = eigen_design(workload)
        mechanism = MatrixMechanism(design.strategy, PrivacyParams(5.0, 1e-4))
        result = mechanism.run(workload, x, random_state=0)
        assert result.answers.shape == (workload.query_count,)
        # With a generous epsilon the noisy total stays near the truth.
        assert result.answers[0] == pytest.approx(x.sum(), rel=0.25)
