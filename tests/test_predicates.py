"""Tests for repro.domain.predicates."""

import numpy as np
import pytest

from repro.domain import AttributeRange, Conjunction, Domain, predicate_vector
from repro.exceptions import DomainError


@pytest.fixture
def domain() -> Domain:
    return Domain([2, 4], ["gender", "gpa"])


class TestAttributeRange:
    def test_full_range_is_all_ones(self, domain):
        vector = AttributeRange("gender", 0, 1).vector(domain)
        np.testing.assert_array_equal(vector, np.ones(8))

    def test_single_bucket_selects_block(self, domain):
        vector = AttributeRange("gender", 1, 1).vector(domain)
        np.testing.assert_array_equal(vector, [0, 0, 0, 0, 1, 1, 1, 1])

    def test_inner_attribute_range(self, domain):
        vector = AttributeRange("gpa", 2, 3).vector(domain)
        np.testing.assert_array_equal(vector, [0, 0, 1, 1, 0, 0, 1, 1])

    def test_numeric_attribute_index(self, domain):
        by_name = AttributeRange("gpa", 0, 1).vector(domain)
        by_index = AttributeRange(1, 0, 1).vector(domain)
        np.testing.assert_array_equal(by_name, by_index)

    def test_invalid_range_raises(self, domain):
        with pytest.raises(DomainError):
            AttributeRange("gpa", 2, 5).vector(domain)


class TestConjunction:
    def test_and_combines_conditions(self, domain):
        predicate = AttributeRange("gender", 1, 1) & AttributeRange("gpa", 2, 3)
        vector = predicate.vector(domain)
        np.testing.assert_array_equal(vector, [0, 0, 0, 0, 0, 0, 1, 1])

    def test_empty_conjunction_is_total(self, domain):
        np.testing.assert_array_equal(Conjunction([]).vector(domain), np.ones(8))

    def test_matches_fig1_query(self, domain):
        # "female students with gpa >= 3.0" is q6 in Fig. 1(c).
        vector = predicate_vector(domain, {"gender": (1, 1), "gpa": (2, 3)})
        np.testing.assert_array_equal(vector, [0, 0, 0, 0, 0, 0, 1, 1])


class TestPredicateVector:
    def test_unconstrained_attribute(self, domain):
        vector = predicate_vector(domain, {"gpa": (0, 1)})
        np.testing.assert_array_equal(vector, [1, 1, 0, 0, 1, 1, 0, 0])

    def test_counts_on_data(self, domain):
        data = np.arange(8, dtype=float)
        vector = predicate_vector(domain, {"gender": (0, 0)})
        assert vector @ data == 0 + 1 + 2 + 3
