"""Tests for repro.domain.schema and datavector construction."""

import numpy as np
import pytest

from repro.domain import (
    CategoricalAttribute,
    NumericAttribute,
    Schema,
    data_vector_from_cells,
    data_vector_from_histogram,
    marginal_counts,
    Domain,
)
from repro.exceptions import DomainError


@pytest.fixture
def student_schema() -> Schema:
    """The paper's Fig. 1 schema: gender x gpa buckets."""
    return Schema(
        [
            CategoricalAttribute("gender", ["M", "F"]),
            NumericAttribute("gpa", [1.0, 2.0, 3.0, 3.5, 4.0]),
        ]
    )


class TestAttributes:
    def test_categorical_size_and_lookup(self):
        attribute = CategoricalAttribute("color", ["r", "g", "b"])
        assert attribute.size == 3
        assert attribute.bucket_of("g") == 1

    def test_categorical_unknown_value(self):
        with pytest.raises(DomainError):
            CategoricalAttribute("color", ["r"]).bucket_of("g")

    def test_categorical_rejects_duplicates(self):
        with pytest.raises(DomainError):
            CategoricalAttribute("color", ["r", "r"])

    def test_numeric_bucketing(self):
        attribute = NumericAttribute("gpa", [1.0, 2.0, 3.0, 4.0])
        assert attribute.size == 3
        assert attribute.bucket_of(1.0) == 0
        assert attribute.bucket_of(2.5) == 1
        assert attribute.bucket_of(3.999) == 2

    def test_numeric_out_of_range(self):
        attribute = NumericAttribute("gpa", [1.0, 4.0])
        with pytest.raises(DomainError):
            attribute.bucket_of(4.0)
        with pytest.raises(DomainError):
            attribute.bucket_of(0.5)

    def test_numeric_rejects_nonincreasing_edges(self):
        with pytest.raises(DomainError):
            NumericAttribute("x", [1.0, 1.0, 2.0])

    def test_labels_are_readable(self, student_schema):
        assert "gpa" in student_schema.attributes[1].bucket_label(0)


class TestSchema:
    def test_domain_shape_matches_fig1(self, student_schema):
        assert student_schema.domain.shape == (2, 4)
        assert student_schema.domain.size == 8

    def test_cell_of_mapping(self, student_schema):
        cell = student_schema.cell_of({"gender": "F", "gpa": 3.7})
        assert cell == student_schema.domain.ravel([1, 3])

    def test_cell_of_sequence(self, student_schema):
        assert student_schema.cell_of(["M", 1.5]) == 0

    def test_cell_of_wrong_length(self, student_schema):
        with pytest.raises(DomainError):
            student_schema.cell_of(["M"])

    def test_cell_condition_description(self, student_schema):
        condition = student_schema.cell_condition(0)
        assert "gender" in condition and "gpa" in condition

    def test_data_vector_counts_records(self, student_schema):
        records = [
            {"gender": "M", "gpa": 1.5},
            {"gender": "M", "gpa": 1.2},
            {"gender": "F", "gpa": 3.9},
        ]
        vector = student_schema.data_vector(records)
        assert vector.sum() == 3
        assert vector[0] == 2

    def test_rejects_duplicate_attribute_names(self):
        with pytest.raises(DomainError):
            Schema([CategoricalAttribute("a", [1]), CategoricalAttribute("a", [2])])

    def test_rejects_empty_schema(self):
        with pytest.raises(DomainError):
            Schema([])


class TestDataVectors:
    def test_from_cells(self):
        domain = Domain([4])
        vector = data_vector_from_cells(domain, [0, 0, 3])
        np.testing.assert_array_equal(vector, [2, 0, 0, 1])

    def test_from_cells_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            data_vector_from_cells(Domain([4]), [4])

    def test_from_histogram_roundtrip(self):
        domain = Domain([2, 3])
        histogram = np.arange(6).reshape(2, 3).astype(float)
        vector = data_vector_from_histogram(domain, histogram)
        np.testing.assert_array_equal(vector, np.arange(6))

    def test_from_histogram_shape_mismatch(self):
        with pytest.raises(DomainError):
            data_vector_from_histogram(Domain([2, 3]), np.zeros((3, 2)))

    def test_from_histogram_rejects_negative(self):
        with pytest.raises(DomainError):
            data_vector_from_histogram(Domain([2]), np.array([-1.0, 1.0]))

    def test_marginal_counts_match_matrix(self):
        domain = Domain([2, 3, 2])
        rng = np.random.default_rng(0)
        data = rng.integers(0, 10, domain.size).astype(float)
        counts = marginal_counts(domain, data, [1])
        matrix = domain.marginalization_matrix([1])
        np.testing.assert_allclose(counts, matrix @ data)

    def test_marginal_counts_wrong_length(self):
        with pytest.raises(DomainError):
            marginal_counts(Domain([2, 3]), np.zeros(5), [0])
