"""Property-based tests for the relational substrate (hypothesis).

The central invariant is that the two routes to a counting-query answer agree:

* evaluate the predicate on the tuples and count the matching rows, or
* compile the predicate into a linear query row and multiply it with the data
  vector aggregated from the same tuples.

These must coincide exactly for every bucket-aligned predicate and every
relation, which is what makes the tuple-level front end trustworthy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.domain.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.exceptions import MisalignedPredicateError
from repro.relational import (
    And,
    Between,
    Comparison,
    IsIn,
    Not,
    Or,
    Relation,
    data_vector,
    relation_from_histogram,
)

SCHEMA = Schema(
    [
        CategoricalAttribute("color", ["red", "green", "blue"]),
        NumericAttribute("size", [0.0, 1.0, 2.0, 4.0, 8.0]),
    ]
)

COLORS = ["red", "green", "blue"]
EDGES = [0.0, 1.0, 2.0, 4.0, 8.0]


@st.composite
def relations(draw):
    count = draw(st.integers(min_value=1, max_value=60))
    colors = draw(st.lists(st.sampled_from(COLORS), min_size=count, max_size=count))
    sizes = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=7.999, allow_nan=False, allow_infinity=False),
            min_size=count,
            max_size=count,
        )
    )
    return Relation({"color": colors, "size": sizes})


@st.composite
def aligned_predicates(draw, depth=2):
    """Random predicates built only from bucket-aligned atoms."""
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from(["color-eq", "color-in", "size-range", "size-threshold"]))
        if kind == "color-eq":
            return Comparison("color", draw(st.sampled_from(["==", "!="])), draw(st.sampled_from(COLORS)))
        if kind == "color-in":
            values = draw(st.lists(st.sampled_from(COLORS), min_size=1, max_size=3, unique=True))
            return IsIn("color", values)
        if kind == "size-range":
            low, high = sorted(draw(st.lists(st.sampled_from(EDGES), min_size=2, max_size=2, unique=True)))
            return Between("size", low, high)
        edge = draw(st.sampled_from(EDGES))
        operator = draw(st.sampled_from(["<", ">="]))
        return Comparison("size", operator, edge)
    combinator = draw(st.sampled_from(["and", "or", "not"]))
    if combinator == "not":
        return Not(draw(aligned_predicates(depth=depth - 1)))
    left = draw(aligned_predicates(depth=depth - 1))
    right = draw(aligned_predicates(depth=depth - 1))
    return And([left, right]) if combinator == "and" else Or([left, right])


class TestCompilationAgreesWithEvaluation:
    @given(relations(), aligned_predicates())
    @settings(max_examples=120, deadline=None)
    def test_compiled_count_equals_evaluated_count(self, relation, predicate):
        x = data_vector(relation, SCHEMA)
        compiled = float(predicate.query_vector(SCHEMA) @ x)
        evaluated = float(predicate.evaluate(relation).sum())
        assert compiled == pytest.approx(evaluated)

    @given(relations(), aligned_predicates())
    @settings(max_examples=60, deadline=None)
    def test_negation_complements_count(self, relation, predicate):
        total = relation.row_count
        positive = float(predicate.evaluate(relation).sum())
        negative = float(Not(predicate).evaluate(relation).sum())
        assert positive + negative == total

    @given(aligned_predicates())
    @settings(max_examples=80, deadline=None)
    def test_compiled_rows_are_binary(self, predicate):
        row = predicate.query_vector(SCHEMA)
        assert set(np.unique(row)) <= {0.0, 1.0}

    @given(relations())
    @settings(max_examples=60, deadline=None)
    def test_data_vector_total_and_round_trip(self, relation):
        x = data_vector(relation, SCHEMA)
        assert x.sum() == relation.row_count
        rebuilt = relation_from_histogram(SCHEMA, x, random_state=0)
        np.testing.assert_array_equal(data_vector(rebuilt, SCHEMA), x)


class TestMisalignment:
    @given(st.floats(min_value=0.05, max_value=7.95, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_non_edge_thresholds_are_rejected(self, threshold):
        if any(abs(threshold - edge) < 1e-9 for edge in EDGES):
            return
        with pytest.raises(MisalignedPredicateError):
            Comparison("size", "<", threshold).query_vector(SCHEMA)

    @given(st.sampled_from(EDGES[1:-1]))
    @settings(max_examples=10, deadline=None)
    def test_edge_thresholds_are_accepted(self, edge):
        row = Comparison("size", "<", edge).query_vector(SCHEMA)
        assert row.sum() > 0
