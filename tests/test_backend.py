"""The pluggable array-backend seam (`repro.utils.backend`).

Covers the seam's contract without requiring any optional runtime:

* selection machinery — lazy env init, ``set_backend``/``backend_scope``
  restore, unknown names rejected loudly, the JAX import guard;
* the generic (non-default) kernel paths, driven by a numpy-masquerading
  backend so they run everywhere: ``kron_apply``/``kron_row_block``, the
  batched PCG, Hutch++, the lockstep dual-ascent batch and the server's
  sharded derivation must all match the default path's answers;
* backend identity in the trace-recycler content key — a backend switch
  mid-process must never replay another backend's Krylov state.

When jax *is* installed, the `backend` fixture in conftest.py additionally
runs the dense-oracle suites against it; nothing here depends on that.
"""

import numpy as np
import pytest

import repro.core.error as error_module
import repro.utils.backend as backend_module
from repro.core.privacy import PrivacyParams
from repro.engine import Server
from repro.exceptions import ReproError
from repro.utils.backend import (
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    backend_scope,
    get_backend,
    resolve_backend,
    set_backend,
)
from repro.utils.linalg import hutchpp_trace, pcg_solve
from repro.utils.operators import (
    EigenDiagOperator,
    KroneckerOperator,
    kron_apply,
    kron_row_block,
)
from repro.workloads import all_range_queries


class MirrorBackend(NumpyBackend):
    """Numpy masquerading as a non-default backend.

    ``is_default=False`` forces every kernel down its generic
    (backend-dispatched) path while the arithmetic stays numpy, so the
    generic code is exercised — and oracle-checked — without jax.
    """

    name = "mirror"
    is_default = False


class TestSelection:
    def test_default_is_zero_overhead_numpy(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert backend.is_default
        assert backend.xp is np
        assert backend.dtype_name == "float64"
        # jit is the identity; vmap is a plain batched loop.
        fn = backend.jit(lambda v: v * 2)
        np.testing.assert_array_equal(fn(np.arange(3)), np.arange(3) * 2)
        batched = backend.vmap(lambda v: v.sum())
        np.testing.assert_array_equal(
            batched(np.arange(6.0).reshape(3, 2)), np.array([1.0, 5.0, 9.0])
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            set_backend("tpu9000")
        # A failed set leaves the active backend untouched.
        assert get_backend().name == "numpy"

    def test_bad_environment_value_raises_not_silently_falls_back(self, monkeypatch):
        monkeypatch.setenv(backend_module.BACKEND_ENV_VAR, "definitely-not-a-backend")
        monkeypatch.setattr(backend_module, "_active_backend", None)
        with pytest.raises(BackendUnavailableError):
            get_backend()

    def test_environment_selects_numpy(self, monkeypatch):
        monkeypatch.setenv(backend_module.BACKEND_ENV_VAR, "numpy")
        monkeypatch.setattr(backend_module, "_active_backend", None)
        assert get_backend().name == "numpy"

    def test_jax_import_guard(self):
        if "jax" in available_backends():
            backend = resolve_backend("jax")
            assert backend.name == "jax" and not backend.is_default
            # x64 on by default: the documented tolerances assume float64.
            assert backend.dtype_name == "float64"
        else:
            with pytest.raises(BackendUnavailableError, match="pip install jax"):
                resolve_backend("jax")

    def test_backend_scope_restores(self):
        before = get_backend()
        with backend_scope(MirrorBackend()) as active:
            assert get_backend() is active
            assert active.name == "mirror"
        assert get_backend() is before

    def test_resolve_backend(self):
        assert resolve_backend(None) is get_backend()
        mirror = MirrorBackend()
        assert resolve_backend(mirror) is mirror
        assert resolve_backend("numpy").name == "numpy"

    def test_available_backends_always_has_numpy_first(self):
        names = available_backends()
        assert names[0] == "numpy"


def random_kron_factors(rng, sizes):
    return [rng.normal(size=(size, size)) for size in sizes]


class TestGenericKernelPaths:
    """The non-default kernel paths must match the default path's answers."""

    def test_kron_apply_matches_default(self, rng):
        factors = random_kron_factors(rng, [3, 4, 2])
        vectors = rng.normal(size=(24, 5))
        expected = kron_apply(factors, vectors)
        with backend_scope(MirrorBackend()):
            mirrored = kron_apply(factors, vectors)
        assert isinstance(mirrored, np.ndarray)
        np.testing.assert_allclose(mirrored, expected, atol=1e-12)
        transposed = kron_apply(factors, vectors, transpose=True)
        with backend_scope(MirrorBackend()):
            mirrored_t = kron_apply(factors, vectors, transpose=True)
        np.testing.assert_allclose(mirrored_t, transposed, atol=1e-12)

    def test_kron_row_block_matches_default(self, rng):
        factors = random_kron_factors(rng, [3, 4])
        indices = np.array([0, 2, 7, 11])
        expected = kron_row_block(factors, indices)
        with backend_scope(MirrorBackend()):
            mirrored = kron_row_block(factors, indices)
        np.testing.assert_allclose(mirrored, expected, atol=1e-12)

    def test_pcg_solve_matches_default(self, rng):
        matrix = rng.normal(size=(40, 40))
        matrix = matrix @ matrix.T + np.eye(40)
        rhs = rng.normal(size=(40, 3))
        oracle = np.linalg.solve(matrix, rhs)
        default_stats, mirror_stats = {}, {}
        solved = pcg_solve(lambda v: matrix @ v, rhs, stats=default_stats)
        with backend_scope(MirrorBackend()):
            mirrored = pcg_solve(lambda v: matrix @ v, rhs, stats=mirror_stats)
        assert isinstance(mirrored, np.ndarray)
        np.testing.assert_allclose(solved, oracle, atol=1e-8)
        np.testing.assert_allclose(mirrored, oracle, atol=1e-8)
        assert mirror_stats["column_iterations"] == default_stats["column_iterations"]

    def test_hutchpp_trace_matches_default(self, rng):
        matrix = rng.normal(size=(30, 30))
        matrix = matrix @ matrix.T + np.eye(30)
        expected = hutchpp_trace(
            lambda v: matrix @ v, 30, samples=24, rng=np.random.default_rng(7)
        )
        with backend_scope(MirrorBackend()):
            mirrored = hutchpp_trace(
                lambda v: matrix @ v, 30, samples=24, rng=np.random.default_rng(7)
            )
        # Probes and sketch basis are always drawn in numpy, so the estimate
        # is backend-independent (up to contraction round-off).
        assert mirrored == pytest.approx(expected, rel=1e-9)

    def test_batched_dual_ascent_matches_default(self, rng):
        from repro.optimize import WeightingProblem
        from repro.optimize.dual_ascent import solve_dual_ascent_batch

        problems = []
        for _ in range(5):
            k, r = 30, int(rng.integers(3, 7))
            constraints = np.abs(rng.normal(size=(k, r)))
            problems.append(
                WeightingProblem(
                    costs=np.abs(rng.normal(size=r)), constraints=constraints
                )
            )
        default = solve_dual_ascent_batch(problems)
        with backend_scope(MirrorBackend()):
            mirrored = solve_dual_ascent_batch(problems)
        for lhs, rhs in zip(default, mirrored):
            assert lhs.iterations == rhs.iterations
            np.testing.assert_allclose(lhs.weights, rhs.weights, atol=1e-12)


class TestRecyclerBackendIdentity:
    def make_pair(self, rng):
        gram = rng.normal(size=(5, 5))
        workload_op = KroneckerOperator([gram.T @ gram], symmetric=True)
        basis = workload_op.eigenbasis()
        strategy_op = EigenDiagOperator(
            basis,
            rng.uniform(0.5, 2.0, size=basis.size),
            rng.uniform(0.1, 1.0, size=basis.size),
        )
        return workload_op, strategy_op

    def test_backend_switch_never_reuses_krylov_state(self, monkeypatch, rng):
        monkeypatch.setattr(
            error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)()
        )
        workload_op, strategy_op = self.make_pair(rng)
        error_module._stochastic_completed_trace(workload_op, strategy_op)
        assert len(error_module._TRACE_RECYCLERS) == 1
        # Same content, different backend name: a fresh recycler, cold start.
        with backend_scope(MirrorBackend()):
            error_module._stochastic_completed_trace(workload_op, strategy_op)
        assert len(error_module._TRACE_RECYCLERS) == 2
        assert not error_module.STOCHASTIC_TRACE_LAST["recycled_sketch"]

    def test_same_backend_still_recycles(self, monkeypatch, rng):
        monkeypatch.setattr(
            error_module, "_TRACE_RECYCLERS", type(error_module._TRACE_RECYCLERS)()
        )
        workload_op, strategy_op = self.make_pair(rng)
        error_module._stochastic_completed_trace(workload_op, strategy_op)
        error_module._stochastic_completed_trace(workload_op, strategy_op)
        assert len(error_module._TRACE_RECYCLERS) == 1
        assert error_module.STOCHASTIC_TRACE_LAST["recycled_sketch"]


class TestServerBackend:
    def test_stats_mirror_the_backend(self):
        server = Server(PrivacyParams(1.0, 1e-4))
        try:
            assert server.stats()["backend"] == "numpy"
        finally:
            server.close()

    def test_unavailable_backend_fails_at_construction(self):
        with pytest.raises(ReproError):
            Server(PrivacyParams(1.0, 1e-4), backend="not-a-backend")

    def test_sharded_answers_match_unsharded_on_mirror(self, rng):
        workload = all_range_queries([8, 4])
        estimate = rng.normal(size=workload.column_count)
        expected = workload.answer(estimate)
        server = Server(
            PrivacyParams(1.0, 1e-4),
            workers=2,
            shards=2,
            shard_min_rows=1,
            backend=MirrorBackend(),
        )
        try:
            assert server.stats()["backend"] == "mirror"
            sharded = server.sharded_answers(workload, estimate)
        finally:
            server.close()
        np.testing.assert_allclose(sharded, expected, atol=1e-10)


class TestCliBackendFlag:
    def test_missing_jax_exits_cleanly(self, capsys):
        if "jax" in available_backends():
            pytest.skip("jax installed; the unavailable path is not reachable")
        from repro.cli import main

        # Backend validation runs before any file I/O, so dummy paths are
        # never touched.
        code = main(
            [
                "query",
                "--schema",
                "does-not-exist.json",
                "--data",
                "does-not-exist.csv",
                "--sql",
                "SELECT COUNT(*) FROM t",
                "--backend",
                "jax",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "jax" in captured.err
        assert "Traceback" not in captured.err
