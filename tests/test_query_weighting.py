"""Tests for the general design-set weighting machinery (Thm. 1, Fig. 5 machinery)."""

import numpy as np
import pytest

from repro import Workload, expected_workload_error, weighted_design_strategy
from repro.core.query_weighting import build_weighted_strategy, design_costs
from repro.exceptions import OptimizationError
from repro.strategies import wavelet_strategy
from repro.strategies.fourier import full_fourier_matrix
from repro.workloads import all_range_queries_1d, kway_marginals, permuted_workload


class TestDesignCosts:
    def test_orthonormal_design_costs_are_eigenvalues(self, range_workload_32):
        values, vectors = range_workload_32.eigen_decomposition()
        costs = design_costs(range_workload_32, vectors)
        np.testing.assert_allclose(np.sort(costs), np.sort(values), rtol=1e-8)

    def test_identity_design_costs_are_column_norms(self, fig1_workload):
        costs = design_costs(fig1_workload, np.eye(8))
        np.testing.assert_allclose(costs, np.diag(fig1_workload.gram))

    def test_dimension_mismatch(self, fig1_workload):
        with pytest.raises(OptimizationError):
            design_costs(fig1_workload, np.eye(4))


class TestBuildWeightedStrategy:
    def test_drops_zero_weight_queries(self):
        design = np.eye(3)
        strategy, lambdas, _ = build_weighted_strategy(design, np.array([1.0, 0.0, 4.0]), complete=False)
        assert strategy.query_count == 2
        np.testing.assert_allclose(lambdas, [1.0, 0.0, 2.0])

    def test_completion_equalises_column_norms(self):
        design = np.array([[1.0, 0.0], [0.0, 0.5]])
        strategy, _, completion_rows = build_weighted_strategy(design, np.array([1.0, 1.0]))
        assert completion_rows == 1
        column_norms = np.sqrt(np.diag(strategy.gram))
        np.testing.assert_allclose(column_norms, column_norms[0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(OptimizationError):
            build_weighted_strategy(np.eye(2), np.zeros(2))

    def test_weight_shape_mismatch(self):
        with pytest.raises(OptimizationError):
            build_weighted_strategy(np.eye(2), np.ones(3))


class TestWeightedDesignStrategy:
    def test_improves_on_unweighted_wavelet(self, privacy):
        # Using the wavelet matrix as the design set can only improve on the
        # plain wavelet strategy (weights of 1 are in the feasible set).
        workload = all_range_queries_1d(32)
        design = wavelet_strategy(32).matrix
        result = weighted_design_strategy(workload, design)
        weighted_error = expected_workload_error(workload, result.strategy, privacy)
        plain_error = expected_workload_error(workload, wavelet_strategy(32), privacy)
        assert weighted_error <= plain_error + 1e-9

    def test_eigen_design_matches_weighted_eigen_design(self, privacy):
        from repro import eigen_design

        workload = all_range_queries_1d(32)
        _, vectors = workload.eigen_decomposition()
        via_general = weighted_design_strategy(workload, vectors)
        via_program2 = eigen_design(workload)
        error_general = expected_workload_error(workload, via_general.strategy, privacy)
        error_program2 = expected_workload_error(workload, via_program2.strategy, privacy)
        assert error_general == pytest.approx(error_program2, rel=1e-3)

    def test_fourier_design_on_marginals(self, privacy):
        # Fig. 5: on 2-way marginals the Fourier design performs about as well
        # as the eigen design.
        workload = kway_marginals([8, 4], 2)
        fourier_design = full_fourier_matrix([8, 4])
        result = weighted_design_strategy(workload, fourier_design)
        from repro import eigen_design

        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, privacy)
        fourier_error = expected_workload_error(workload, result.strategy, privacy)
        assert fourier_error <= eigen_error * 1.2

    def test_eigen_design_robust_to_permutation_unlike_wavelet_design(self, privacy):
        # Fig. 5: fixed design sets degrade under permutation of cell
        # conditions, the eigen design does not.
        workload = all_range_queries_1d(32)
        permuted = permuted_workload(workload, random_state=9)
        wavelet_design = wavelet_strategy(32).matrix
        wavelet_result = weighted_design_strategy(permuted, wavelet_design)
        from repro import eigen_design

        eigen_result = eigen_design(permuted)
        wavelet_error = expected_workload_error(permuted, wavelet_result.strategy, privacy)
        eigen_error = expected_workload_error(permuted, eigen_result.strategy, privacy)
        assert eigen_error < wavelet_error

    def test_result_metadata(self, fig1_workload):
        result = weighted_design_strategy(fig1_workload, np.eye(8), name="identity-design")
        assert result.strategy.name == "identity-design"
        assert result.costs.shape == (8,)
        assert result.weights.shape == (8,)
