"""Tests for range workloads and their closed-form Gram matrices."""

import numpy as np
import pytest

from repro.domain import Domain
from repro.workloads import (
    all_range_gram,
    all_range_queries,
    all_range_queries_1d,
    all_range_query_count,
    cdf_workload,
    prefix_gram,
    prefix_workload,
    random_range_queries,
    range_query_vector,
)


class TestAllRange1D:
    def test_query_count(self):
        assert all_range_queries_1d(8).query_count == 36
        assert all_range_query_count(2048) == 2048 * 2049 // 2

    def test_explicit_rows_are_ranges(self):
        workload = all_range_queries_1d(4)
        matrix = workload.matrix
        # Every row is a contiguous block of ones.
        for row in matrix:
            ones = np.flatnonzero(row)
            assert np.array_equal(ones, np.arange(ones[0], ones[-1] + 1))
            assert set(np.unique(row)).issubset({0.0, 1.0})

    def test_gram_closed_form_matches_explicit(self):
        for size in (1, 2, 5, 16):
            explicit = all_range_queries_1d(size, materialize=True)
            np.testing.assert_allclose(all_range_gram(size), explicit.gram)

    def test_implicit_above_limit(self):
        workload = all_range_queries_1d(256)
        assert not workload.has_matrix
        assert workload.query_count == all_range_query_count(256)

    def test_force_materialization_flag(self):
        assert all_range_queries_1d(100, materialize=True).has_matrix
        assert not all_range_queries_1d(8, materialize=False).has_matrix

    def test_sensitivity_is_sqrt_of_max_coverage(self):
        # The centre cell of n cells is covered by the most ranges.
        workload = all_range_queries_1d(9)
        expected = np.sqrt(np.max(np.diag(all_range_gram(9))))
        assert workload.sensitivity_l2 == pytest.approx(expected)


class TestMultiDimensionalRanges:
    def test_kron_gram_matches_explicit_small(self):
        explicit = all_range_queries([4, 3], materialize=True)
        rows = []
        for low0 in range(4):
            for high0 in range(low0, 4):
                for low1 in range(3):
                    for high1 in range(low1, 3):
                        rows.append(
                            range_query_vector(Domain([4, 3]), [low0, low1], [high0, high1])
                        )
        manual = np.vstack(rows)
        np.testing.assert_allclose(explicit.gram, manual.T @ manual)
        assert explicit.query_count == manual.shape[0]

    def test_query_count_is_product(self):
        workload = all_range_queries([64, 32])
        assert workload.query_count == (64 * 65 // 2) * (32 * 33 // 2)

    def test_2048_cell_configurations_share_cells(self):
        for dims in ([2048], [64, 32], [16, 16, 8], [8, 8, 8, 4], [2] * 11):
            assert all_range_queries(dims).column_count == 2048


class TestRandomRanges:
    def test_shape_and_binary_entries(self, rng):
        workload = random_range_queries([8, 8], 25, random_state=rng)
        assert workload.shape == (25, 64)
        assert set(np.unique(workload.matrix)).issubset({0.0, 1.0})

    def test_rows_are_axis_aligned_boxes(self, rng):
        domain = Domain([6, 5])
        workload = random_range_queries(domain, 40, random_state=rng)
        for row in workload.matrix:
            grid = row.reshape(6, 5)
            rows_used = np.flatnonzero(grid.any(axis=1))
            cols_used = np.flatnonzero(grid.any(axis=0))
            expected = np.zeros_like(grid)
            expected[np.ix_(rows_used, cols_used)] = 1.0
            np.testing.assert_array_equal(grid, expected)

    def test_reproducible_with_seed(self):
        first = random_range_queries([16], 10, random_state=7)
        second = random_range_queries([16], 10, random_state=7)
        np.testing.assert_array_equal(first.matrix, second.matrix)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            random_range_queries([8], 0)

    def test_range_query_vector_validates_bounds(self):
        with pytest.raises(ValueError):
            range_query_vector(Domain([4]), [2], [1])


class TestPrefixAndCdf:
    def test_prefix_gram_closed_form(self):
        workload = prefix_workload(12)
        np.testing.assert_allclose(prefix_gram(12), workload.gram)

    def test_cdf_first_cell_has_max_sensitivity(self):
        workload = cdf_workload(16)
        column_coverage = np.abs(workload.matrix).sum(axis=0)
        assert column_coverage[0] == 16
        assert column_coverage[-1] == 1

    def test_cdf_answers_are_cumulative_sums(self):
        workload = cdf_workload(5)
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        np.testing.assert_allclose(workload.answer(data), np.cumsum(data))
