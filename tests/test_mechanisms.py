"""Tests for the Gaussian, Laplace and matrix mechanisms and the accountant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    GaussianMechanism,
    LaplaceMechanism,
    MatrixMechanism,
    PrivacyParams,
    Strategy,
    Workload,
)
from repro.exceptions import SingularStrategyError
from repro.mechanisms import (
    BudgetExceededError,
    PrivacyAccountant,
    least_squares_estimate,
    nonnegative_least_squares_estimate,
)
from repro.strategies import identity_strategy, wavelet_strategy
from repro.workloads import all_range_queries_1d


class TestGaussianMechanism:
    def test_noise_scale_matches_prop2(self, privacy, fig1_workload):
        mechanism = GaussianMechanism(privacy)
        expected = privacy.gaussian_scale(np.sqrt(5.0))
        assert mechanism.noise_scale(fig1_workload) == pytest.approx(expected)

    def test_requires_delta(self):
        with pytest.raises(ValueError):
            GaussianMechanism(PrivacyParams(0.5, 0.0))

    def test_answers_are_unbiased(self, privacy, rng):
        workload = Workload.identity(4)
        data = np.array([10.0, 20.0, 30.0, 40.0])
        mechanism = GaussianMechanism(privacy)
        answers = np.mean(
            [mechanism.answer(workload, data, random_state=rng) for _ in range(2000)], axis=0
        )
        np.testing.assert_allclose(answers, data, atol=1.5)

    def test_empirical_noise_scale(self, privacy, rng):
        workload = Workload.total(8)
        data = np.zeros(8)
        mechanism = GaussianMechanism(privacy)
        samples = np.array(
            [mechanism.answer(workload, data, random_state=rng)[0] for _ in range(4000)]
        )
        assert samples.std() == pytest.approx(mechanism.noise_scale(workload), rel=0.1)

    def test_raw_matrix_input(self, privacy, rng):
        answers = GaussianMechanism(privacy).answer(np.eye(3), np.ones(3), random_state=rng)
        assert answers.shape == (3,)

    def test_data_length_validated(self, privacy):
        with pytest.raises(ValueError):
            GaussianMechanism(privacy).answer(np.eye(3), np.ones(4))


class TestLaplaceMechanism:
    def test_noise_scale_is_l1_sensitivity_over_epsilon(self, fig1_workload):
        mechanism = LaplaceMechanism(0.5)
        expected = fig1_workload.sensitivity_l1 / 0.5
        assert mechanism.noise_scale(fig1_workload) == pytest.approx(expected)

    def test_accepts_privacy_params(self, privacy):
        assert LaplaceMechanism(privacy).epsilon == privacy.epsilon

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(0.0)

    def test_empirical_scale(self, rng):
        mechanism = LaplaceMechanism(1.0)
        samples = np.array(
            [mechanism.answer(np.eye(1), np.zeros(1), random_state=rng)[0] for _ in range(4000)]
        )
        # Variance of Laplace(b) is 2 b^2 with b = 1 here.
        assert samples.var() == pytest.approx(2.0, rel=0.15)


class TestInference:
    def test_least_squares_exact_without_noise(self, rng):
        strategy = wavelet_strategy(8).matrix
        data = rng.integers(0, 50, 8).astype(float)
        estimate = least_squares_estimate(strategy, strategy @ data)
        np.testing.assert_allclose(estimate, data, atol=1e-8)

    def test_least_squares_rank_deficient(self):
        matrix = np.array([[1.0, 1.0]])
        estimate = least_squares_estimate(matrix, np.array([4.0]))
        # Minimum-norm solution splits the total evenly.
        np.testing.assert_allclose(estimate, [2.0, 2.0])

    def test_least_squares_zero_strategy_rejected(self):
        from repro.exceptions import StrategyError

        with pytest.raises(StrategyError):
            least_squares_estimate(np.zeros((2, 2)), np.zeros(2))

    def test_nonnegative_estimate(self):
        matrix = np.eye(3)
        estimate = nonnegative_least_squares_estimate(matrix, np.array([5.0, -3.0, 2.0]))
        assert np.all(estimate >= 0)
        np.testing.assert_allclose(estimate, [5.0, 0.0, 2.0])


class TestMatrixMechanism:
    def test_unbiased_answers(self, privacy, rng, fig1_workload):
        data = np.array([30.0, 40.0, 10.0, 5.0, 25.0, 35.0, 15.0, 10.0])
        mechanism = MatrixMechanism(wavelet_strategy(8), privacy)
        answers = np.mean(
            [mechanism.answer(fig1_workload, data, random_state=rng) for _ in range(1500)], axis=0
        )
        np.testing.assert_allclose(answers, fig1_workload.answer(data), atol=4.0)

    def test_answers_are_consistent(self, privacy, rng, fig1_workload):
        # q1 = q2 + q3 and q4 = q1 - q5 must hold exactly in every run because
        # all answers derive from a single estimate.
        mechanism = MatrixMechanism(identity_strategy(8), privacy)
        result = mechanism.run(fig1_workload, np.ones(8), random_state=rng)
        q = result.answers
        assert q[0] == pytest.approx(q[1] + q[2])
        assert q[3] == pytest.approx(q[0] - q[4])

    def test_estimate_has_domain_size(self, privacy, rng, fig1_workload):
        mechanism = MatrixMechanism(wavelet_strategy(8), privacy)
        result = mechanism.run(fig1_workload, np.ones(8), random_state=rng)
        assert result.estimate.shape == (8,)
        assert result.strategy_answers.shape == (8,)
        assert result.noise_scale > 0

    def test_rejects_unsupporting_strategy(self, privacy):
        strategy = Strategy(np.array([[1.0, 0.0]]))
        workload = Workload(np.array([[0.0, 1.0]]))
        with pytest.raises(SingularStrategyError):
            MatrixMechanism(strategy, privacy).run(workload, np.zeros(2))

    def test_rejects_cell_count_mismatch(self, privacy, fig1_workload):
        with pytest.raises(SingularStrategyError):
            MatrixMechanism(identity_strategy(4), privacy).run(fig1_workload, np.zeros(4))

    def test_expected_error_accessor(self, privacy, fig1_workload):
        from repro import expected_workload_error

        mechanism = MatrixMechanism(wavelet_strategy(8), privacy)
        assert mechanism.expected_error(fig1_workload) == pytest.approx(
            expected_workload_error(fig1_workload, wavelet_strategy(8), privacy)
        )

    def test_empirical_error_matches_prop4(self, privacy, rng):
        workload = all_range_queries_1d(16)
        strategy = wavelet_strategy(16)
        mechanism = MatrixMechanism(strategy, privacy)
        data = rng.integers(0, 100, 16).astype(float)
        true = workload.answer(data)
        squared = [
            np.mean((mechanism.answer(workload, data, random_state=rng) - true) ** 2)
            for _ in range(400)
        ]
        empirical = np.sqrt(np.mean(squared))
        assert empirical == pytest.approx(mechanism.expected_error(workload), rel=0.1)

    def test_nonnegative_option(self, privacy, rng):
        workload = Workload.identity(6)
        mechanism = MatrixMechanism(identity_strategy(6), privacy, nonnegative=True)
        result = mechanism.run(workload, np.zeros(6), random_state=rng)
        assert np.all(result.estimate >= 0)


class TestAccountant:
    def test_spend_within_budget(self):
        accountant = PrivacyAccountant(PrivacyParams(1.0, 1e-4))
        accountant.spend(PrivacyParams(0.4, 5e-5), label="first")
        accountant.spend(PrivacyParams(0.6, 5e-5), label="second")
        assert accountant.remaining is None
        assert len(accountant.history) == 2

    def test_overspend_rejected(self):
        accountant = PrivacyAccountant(PrivacyParams(0.5, 1e-4))
        with pytest.raises(BudgetExceededError):
            accountant.spend(PrivacyParams(0.6, 1e-5))

    def test_remaining_budget(self):
        accountant = PrivacyAccountant(PrivacyParams(1.0, 1e-4))
        accountant.spend(PrivacyParams(0.25, 2e-5))
        remaining = accountant.remaining
        assert remaining.epsilon == pytest.approx(0.75)
        assert remaining.delta == pytest.approx(8e-5)

    def test_can_spend_is_side_effect_free(self):
        accountant = PrivacyAccountant(PrivacyParams(1.0, 1e-4))
        assert accountant.can_spend(PrivacyParams(0.9, 1e-5))
        assert accountant.spent_epsilon == 0.0

    def test_delta_exhaustion_counts(self):
        # Delta overspent (e.g. state restored from elsewhere) with epsilon
        # to spare: the budget is exhausted, not "usable at delta 0".
        accountant = PrivacyAccountant(
            PrivacyParams(1.0, 1e-4), spent_epsilon=0.1, spent_delta=2e-4
        )
        assert accountant.remaining is None
        assert not accountant.can_spend(PrivacyParams(0.1, 1e-5))
        assert not accountant.can_spend(PrivacyParams(0.1, 0.0))

    def test_delta_fully_spent_but_not_overspent_allows_pure_requests(self):
        accountant = PrivacyAccountant(PrivacyParams(1.0, 1e-4))
        accountant.spend(PrivacyParams(0.5, 1e-4))
        remaining = accountant.remaining
        assert remaining is not None
        assert remaining.delta == 0.0
        assert accountant.can_spend(PrivacyParams(0.5, 0.0))
        assert not accountant.can_spend(PrivacyParams(0.5, 1e-5))


class TestAccountantProperties:
    """Property test: spend / can_spend / remaining can never disagree."""

    @given(
        budget_epsilon=st.floats(0.1, 4.0),
        budget_delta=st.one_of(st.just(0.0), st.floats(1e-8, 1e-2)),
        requests=st.lists(
            st.tuples(
                st.floats(0.01, 2.0),
                st.one_of(st.just(0.0), st.floats(1e-10, 5e-3)),
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_spend_can_spend_remaining_consistency(
        self, budget_epsilon, budget_delta, requests
    ):
        accountant = PrivacyAccountant(PrivacyParams(budget_epsilon, budget_delta))
        total_epsilon = 0.0
        total_delta = 0.0
        for epsilon, delta in requests:
            request = PrivacyParams(epsilon, delta)
            before = (
                accountant.spent_epsilon,
                accountant.spent_delta,
                len(accountant.history),
            )
            if accountant.can_spend(request):
                accountant.spend(request)
                total_epsilon += epsilon
                total_delta += delta
                assert len(accountant.history) == before[2] + 1
            else:
                # A refused spend raises and leaves the state untouched.
                with pytest.raises(BudgetExceededError):
                    accountant.spend(request)
                after = (
                    accountant.spent_epsilon,
                    accountant.spent_delta,
                    len(accountant.history),
                )
                assert after == before
            # Spent totals track exactly what was granted.
            assert accountant.spent_epsilon == pytest.approx(total_epsilon)
            assert accountant.spent_delta == pytest.approx(total_delta)
            # Granted spending never exceeds the budget (within slack).
            assert accountant.spent_epsilon <= accountant.budget.epsilon + 1e-12
            assert accountant.spent_delta <= accountant.budget.delta + 1e-15
            remaining = accountant.remaining
            if remaining is None:
                # Exhausted: nothing beyond the rounding slack is spendable.
                assert not accountant.can_spend(PrivacyParams(1e-6, 0.0))
            else:
                # Not exhausted: spending exactly the remainder is allowed.
                assert accountant.can_spend(remaining)
