"""Tests for repro.relational.relation and repro.relational.csvio."""

import numpy as np
import pytest

from repro.exceptions import RelationalError
from repro.relational import Relation, read_csv, read_csv_text, write_csv, write_csv_text


@pytest.fixture
def students() -> Relation:
    return Relation(
        {
            "gender": ["M", "F", "F", "M", "F", "M"],
            "gpa": [1.5, 2.5, 3.2, 3.8, 1.1, 3.6],
            "year": [2020, 2021, 2020, 2022, 2021, 2020],
        },
        name="students",
    )


class TestConstruction:
    def test_column_names_preserve_order(self, students):
        assert students.column_names == ("gender", "gpa", "year")

    def test_row_count(self, students):
        assert students.row_count == 6
        assert len(students) == 6

    def test_numeric_columns_become_float(self, students):
        assert students.column("gpa").dtype == float
        assert students.column("year").dtype == float

    def test_string_columns_stay_object(self, students):
        assert students.column("gender").dtype == object

    def test_boolean_columns_become_float(self):
        relation = Relation({"flag": [True, False, True]})
        np.testing.assert_array_equal(relation.column("flag"), [1.0, 0.0, 1.0])

    def test_rejects_empty_columns(self):
        with pytest.raises(RelationalError):
            Relation({})

    def test_rejects_length_mismatch(self):
        with pytest.raises(RelationalError):
            Relation({"a": [1, 2], "b": [1, 2, 3]})

    def test_rejects_two_dimensional_column(self):
        with pytest.raises(RelationalError):
            Relation({"a": np.zeros((2, 2))})

    def test_from_rows(self):
        relation = Relation.from_rows([(1, "x"), (2, "y")], ["id", "label"])
        assert relation.row_count == 2
        np.testing.assert_array_equal(relation.column("id"), [1.0, 2.0])
        assert list(relation.column("label")) == ["x", "y"]

    def test_from_rows_rejects_ragged_rows(self):
        with pytest.raises(RelationalError):
            Relation.from_rows([(1, 2), (3,)], ["a", "b"])

    def test_from_records(self):
        relation = Relation.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert relation.column_names == ("a", "b")
        assert relation.row_count == 2

    def test_from_records_rejects_inconsistent_keys(self):
        with pytest.raises(RelationalError):
            Relation.from_records([{"a": 1}, {"b": 2}])

    def test_from_records_rejects_empty(self):
        with pytest.raises(RelationalError):
            Relation.from_records([])


class TestAccess:
    def test_unknown_column_raises(self, students):
        with pytest.raises(RelationalError):
            students.column("missing")

    def test_contains(self, students):
        assert "gpa" in students
        assert "missing" not in students

    def test_distinct_preserves_first_appearance_order(self, students):
        assert students.distinct("gender") == ["M", "F"]

    def test_to_records_round_trip(self, students):
        records = students.to_records()
        rebuilt = Relation.from_records(records)
        assert rebuilt.row_count == students.row_count
        np.testing.assert_allclose(rebuilt.column("gpa"), students.column("gpa"))

    def test_iter_rows(self, students):
        rows = list(students.iter_rows())
        assert len(rows) == 6
        assert rows[0][0] == "M"


class TestAlgebra:
    def test_select_by_mask(self, students):
        mask = students.column("gpa") >= 3.0
        selected = students.select(mask)
        assert selected.row_count == 3
        assert np.all(selected.column("gpa") >= 3.0)

    def test_select_rejects_wrong_length_mask(self, students):
        with pytest.raises(RelationalError):
            students.select(np.ones(3, dtype=bool))

    def test_project(self, students):
        projected = students.project(["gpa", "gender"])
        assert projected.column_names == ("gpa", "gender")
        assert projected.row_count == students.row_count

    def test_project_rejects_empty(self, students):
        with pytest.raises(RelationalError):
            students.project([])

    def test_head(self, students):
        assert students.head(2).row_count == 2
        assert students.head(100).row_count == 6

    def test_concat(self, students):
        doubled = students.concat(students)
        assert doubled.row_count == 12

    def test_concat_rejects_different_columns(self, students):
        other = Relation({"x": [1.0]})
        with pytest.raises(RelationalError):
            students.concat(other)

    def test_sample_without_replacement(self, students):
        sample = students.sample(4, random_state=0)
        assert sample.row_count == 4

    def test_sample_with_replacement_can_exceed_size(self, students):
        sample = students.sample(20, random_state=0, replace=True)
        assert sample.row_count == 20

    def test_sample_too_large_without_replacement_raises(self, students):
        with pytest.raises(RelationalError):
            students.sample(7, random_state=0)

    def test_sample_negative_raises(self, students):
        with pytest.raises(RelationalError):
            students.sample(-1)


class TestAggregation:
    def test_count(self, students):
        assert students.count() == 6

    def test_group_by_counts_single_column(self, students):
        counts = students.group_by_counts(["gender"])
        assert counts == {("M",): 3, ("F",): 3}

    def test_group_by_counts_two_columns(self, students):
        counts = students.group_by_counts(["gender", "year"])
        assert counts[("M", 2020.0)] == 2
        assert sum(counts.values()) == 6


class TestCsv:
    def test_round_trip_text(self, students):
        text = write_csv_text(students)
        rebuilt = read_csv_text(text)
        assert rebuilt.column_names == students.column_names
        np.testing.assert_allclose(rebuilt.column("gpa"), students.column("gpa"))
        assert list(rebuilt.column("gender")) == list(students.column("gender"))

    def test_round_trip_file(self, students, tmp_path):
        path = write_csv(students, tmp_path / "students.csv")
        rebuilt = read_csv(path)
        assert rebuilt.name == "students"
        assert rebuilt.row_count == students.row_count

    def test_read_without_header(self):
        relation = read_csv_text("1,a\n2,b\n", has_header=False, column_names=["id", "label"])
        assert relation.column_names == ("id", "label")
        np.testing.assert_array_equal(relation.column("id"), [1.0, 2.0])

    def test_read_without_header_requires_names(self):
        with pytest.raises(RelationalError):
            read_csv_text("1,2\n", has_header=False)

    def test_mixed_column_stays_string(self):
        relation = read_csv_text("value\n1\nx\n")
        assert relation.column("value").dtype == object

    def test_numeric_detection(self):
        relation = read_csv_text("value\n1\n2.5\n-3\n")
        assert relation.column("value").dtype == float

    def test_rejects_empty_input(self):
        with pytest.raises(RelationalError):
            read_csv_text("")

    def test_rejects_header_only(self):
        with pytest.raises(RelationalError):
            read_csv_text("a,b\n")

    def test_rejects_ragged_rows(self):
        with pytest.raises(RelationalError):
            read_csv_text("a,b\n1,2\n3\n")

    def test_custom_delimiter(self, students):
        text = write_csv_text(students, delimiter=";")
        rebuilt = read_csv_text(text, delimiter=";")
        assert rebuilt.row_count == students.row_count
