"""Tests for the error analysis module (Prop. 4, Def. 5, Thm. 2, Thm. 3)."""

import numpy as np
import pytest

from repro import (
    PrivacyParams,
    Strategy,
    Workload,
    approximation_ratio,
    approximation_ratio_bound,
    expected_workload_error,
    minimum_error_bound,
    per_query_error,
    singular_value_bound,
)
from repro.core.error import expected_total_squared_error
from repro.exceptions import SingularStrategyError
from repro.strategies import identity_strategy, wavelet_strategy


class TestExpectedError:
    def test_identity_strategy_identity_workload(self, privacy):
        # Every query is a single cell with unit-sensitivity noise.
        workload = Workload.identity(16)
        error = expected_workload_error(workload, identity_strategy(16), privacy)
        assert error == pytest.approx(np.sqrt(privacy.variance_factor))

    def test_error_matches_monte_carlo(self, privacy, rng):
        # The analytical error of Prop. 4 equals the empirical RMSE.
        from repro.mechanisms import MatrixMechanism

        workload = Workload(np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]]))
        strategy = Strategy.identity(3)
        mechanism = MatrixMechanism(strategy, privacy)
        data = np.array([5.0, 7.0, 2.0])
        true = workload.answer(data)
        squared = []
        for _ in range(3000):
            noisy = mechanism.answer(workload, data, random_state=rng)
            squared.append(np.mean((noisy - true) ** 2))
        empirical = np.sqrt(np.mean(squared))
        analytical = expected_workload_error(workload, strategy, privacy)
        assert empirical == pytest.approx(analytical, rel=0.05)

    def test_error_is_scale_invariant_in_strategy(self, fig1_workload, privacy):
        strategy = wavelet_strategy(8)
        scaled = Strategy(strategy.matrix * 7.3)
        assert expected_workload_error(fig1_workload, strategy, privacy) == pytest.approx(
            expected_workload_error(fig1_workload, scaled, privacy)
        )

    def test_error_scales_linearly_with_inverse_epsilon(self, fig1_workload):
        strategy = identity_strategy(8)
        low = expected_workload_error(fig1_workload, strategy, PrivacyParams(0.25, 1e-4))
        high = expected_workload_error(fig1_workload, strategy, PrivacyParams(1.0, 1e-4))
        assert low == pytest.approx(4 * high)

    def test_total_squared_error_relation(self, fig1_workload, privacy):
        strategy = identity_strategy(8)
        total = expected_total_squared_error(fig1_workload, strategy, privacy)
        rmse = expected_workload_error(fig1_workload, strategy, privacy)
        assert rmse == pytest.approx(np.sqrt(total / fig1_workload.query_count))

    def test_unsupporting_strategy_raises(self, privacy):
        workload = Workload(np.array([[0.0, 1.0]]))
        strategy = Strategy(np.array([[1.0, 0.0]]))
        with pytest.raises(SingularStrategyError):
            expected_workload_error(workload, strategy, privacy)

    def test_rank_deficient_strategy_supporting_workload(self, privacy):
        # Strategy observes the sum only; the workload asks for the sum only.
        # The strategy has unit sensitivity (each column norm is 1) and the
        # answer is passed through unchanged, so the error is sqrt(P).
        workload = Workload(np.array([[1.0, 1.0]]))
        strategy = Strategy(np.array([[1.0, 1.0]]))
        error = expected_workload_error(workload, strategy, privacy)
        assert error == pytest.approx(np.sqrt(privacy.variance_factor))


class TestPerQueryError:
    def test_identity_per_query_uniform(self, privacy):
        workload = Workload.identity(5)
        errors = per_query_error(workload, identity_strategy(5), privacy)
        np.testing.assert_allclose(errors, np.sqrt(privacy.variance_factor))

    def test_rms_of_per_query_matches_workload_error(self, fig1_workload, privacy):
        strategy = wavelet_strategy(8)
        per_query = per_query_error(fig1_workload, strategy, privacy)
        combined = np.sqrt(np.mean(per_query**2))
        assert combined == pytest.approx(
            expected_workload_error(fig1_workload, strategy, privacy)
        )

    def test_larger_queries_have_larger_error_under_identity(self, privacy):
        workload = Workload(np.array([[1.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
        errors = per_query_error(workload, identity_strategy(3), privacy)
        assert errors[1] > errors[0]


class TestBounds:
    def test_svdb_of_identity(self):
        assert singular_value_bound(Workload.identity(10)) == pytest.approx(10.0)

    def test_svdb_invariant_to_column_permutation(self, fig1_workload, rng):
        permutation = rng.permutation(8)
        permuted = fig1_workload.permute_columns(list(permutation))
        assert singular_value_bound(permuted) == pytest.approx(
            singular_value_bound(fig1_workload)
        )

    def test_minimum_error_bound_below_any_strategy(self, fig1_workload, privacy):
        bound = minimum_error_bound(fig1_workload, privacy)
        for strategy in (identity_strategy(8), wavelet_strategy(8)):
            assert bound <= expected_workload_error(fig1_workload, strategy, privacy) + 1e-9

    def test_identity_workload_bound_is_achieved_by_identity(self, privacy):
        workload = Workload.identity(12)
        bound = minimum_error_bound(workload, privacy)
        error = expected_workload_error(workload, identity_strategy(12), privacy)
        assert error == pytest.approx(bound)

    def test_approximation_ratio_at_least_one_for_bound_achievers(self, privacy):
        workload = Workload.identity(6)
        assert approximation_ratio(workload, identity_strategy(6), privacy) == pytest.approx(1.0)

    def test_theorem3_bound_at_least_one(self, fig1_workload, range_workload_32):
        assert approximation_ratio_bound(fig1_workload) >= 1.0
        assert approximation_ratio_bound(range_workload_32) >= 1.0
