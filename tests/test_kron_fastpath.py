"""Factorized Kronecker fast path vs the dense ``np.kron`` oracle.

Property-based tests: every structured quantity (Gram, eigenvalues, L2
sensitivity, answers, error traces, the full eigen design) must agree with
the dense computation on random factors — including rank-deficient factors
and unions of Kronecker products — to tight tolerances.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import (
    PrivacyParams,
    Strategy,
    Workload,
    eigen_design,
    expected_workload_error,
)
from repro.core.error import _trace_core
from repro.exceptions import MaterializationError, SingularStrategyError
from repro.optimize import WeightingProblem, solve_dual_ascent
from repro.utils.operators import (
    EigenDiagOperator,
    KroneckerConstraints,
    KroneckerOperator,
    StackedOperator,
    SumOperator,
    kron_apply,
    within_materialization_budget,
)
from repro.workloads import all_range_queries

# Every test in this module runs once per available array backend: the
# numpy case is the default bit-for-bit path, the jax case exercises the
# optional backend against the same dense oracles (auto-skipped when jax
# is not installed).
pytestmark = pytest.mark.usefixtures("backend")

PRIVACY = PrivacyParams(0.5, 1e-4)

factor_matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False),
)

nonzero_factor = factor_matrices.filter(lambda m: np.linalg.norm(m) > 1e-3)

factor_lists = st.lists(nonzero_factor, min_size=2, max_size=3)


def dense_kron(mats):
    result = np.asarray(mats[0], dtype=float)
    for m in mats[1:]:
        result = np.kron(result, np.asarray(m, dtype=float))
    return result


def rank_deficient_factor(rng, size):
    """A factor with a duplicated row and a zero column (rank < size)."""
    matrix = rng.normal(size=(size, size))
    matrix[-1] = matrix[0]
    matrix[:, 0] = 0.0
    return matrix


class TestKronApply:
    @given(factor_lists, st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matvec_matches_dense(self, factors, seed):
        rng = np.random.default_rng(seed)
        dense = dense_kron(factors)
        x = rng.normal(size=dense.shape[1])
        np.testing.assert_allclose(kron_apply(factors, x), dense @ x, atol=1e-9)
        y = rng.normal(size=dense.shape[0])
        np.testing.assert_allclose(
            kron_apply(factors, y, transpose=True), dense.T @ y, atol=1e-9
        )

    @given(factor_lists, st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_batched_matvec(self, factors, seed):
        rng = np.random.default_rng(seed)
        dense = dense_kron(factors)
        batch = rng.normal(size=(dense.shape[1], 3))
        np.testing.assert_allclose(kron_apply(factors, batch), dense @ batch, atol=1e-9)


class TestKroneckerOperator:
    @given(factor_lists)
    @settings(max_examples=40, deadline=None)
    def test_gram_and_sensitivity_match_dense(self, factors):
        op = KroneckerOperator(factors)
        dense = dense_kron(factors)
        np.testing.assert_allclose(op.to_dense(), dense, atol=1e-12)
        np.testing.assert_allclose(op.gram().to_dense(), dense.T @ dense, atol=1e-8)
        np.testing.assert_allclose(
            op.column_norms_squared(), np.sum(dense**2, axis=0), atol=1e-8
        )
        expected = np.sqrt(np.max(np.sum(dense**2, axis=0)))
        assert op.sensitivity_l2 == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @given(factor_lists)
    @settings(max_examples=40, deadline=None)
    def test_factorized_eigenvalues_match_dense_eigh(self, factors):
        grams = [f.T @ f for f in factors]
        op = KroneckerOperator(grams, symmetric=True)
        basis = op.eigenbasis()
        oracle = np.clip(np.linalg.eigvalsh(dense_kron(grams))[::-1], 0.0, None)
        scale = max(oracle[0], 1.0)
        np.testing.assert_allclose(basis.sorted_values, oracle, atol=1e-8 * scale)
        # The lazy eigenvector matrix must actually diagonalise the product.
        queries = basis.queries_dense()
        recon = queries.T @ np.diag(basis.sorted_values) @ queries
        np.testing.assert_allclose(recon, dense_kron(grams), atol=1e-7 * scale)


class TestWorkloadFastPath:
    @given(factor_lists)
    @settings(max_examples=30, deadline=None)
    def test_kron_workload_matches_dense_oracle(self, factors):
        parts = [Workload(f) for f in factors]
        product = Workload.kronecker(parts)
        dense = dense_kron(factors)
        oracle = Workload(dense)
        np.testing.assert_allclose(product.gram, oracle.gram, atol=1e-8)
        scale = max(oracle.eigenvalues[0], 1.0)
        np.testing.assert_allclose(
            product.eigenvalues, oracle.eigenvalues, atol=1e-8 * scale
        )
        assert product.sensitivity_l2 == pytest.approx(
            oracle.sensitivity_l2, rel=1e-9, abs=1e-12
        )
        assert product.query_count == oracle.query_count
        assert product.rank == oracle.rank

    def test_rank_deficient_kron_matches_dense(self):
        rng = np.random.default_rng(7)
        factors = [rank_deficient_factor(rng, 3), rng.normal(size=(4, 4))]
        product = Workload.kronecker([Workload(f) for f in factors])
        oracle = Workload(dense_kron(factors))
        scale = oracle.eigenvalues[0]
        np.testing.assert_allclose(
            product.eigenvalues, oracle.eigenvalues, atol=1e-9 * scale
        )
        assert product.rank == oracle.rank
        assert product.rank < product.column_count

    @given(factor_lists, st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_answer_via_row_operator(self, factors, seed):
        rng = np.random.default_rng(seed)
        product = Workload.kronecker([Workload(f) for f in factors])
        data = rng.normal(size=product.column_count)
        np.testing.assert_allclose(
            product.answer(data), dense_kron(factors) @ data, atol=1e-8
        )

    def test_union_of_kronecker_matches_dense(self):
        rng = np.random.default_rng(3)
        blocks = []
        dense_parts = []
        for _ in range(2):
            factors = [rng.normal(size=(3, 3)), rng.normal(size=(2, 4))]
            blocks.append(
                Workload.kronecker([Workload.from_gram(f.T @ f, query_count=f.shape[0]) for f in factors])
            )
            dense_parts.append(dense_kron([f.T @ f for f in factors]))
        union = Workload.union(blocks)
        np.testing.assert_allclose(union.gram, sum(dense_parts), atol=1e-8)
        assert union.query_count == sum(b.query_count for b in blocks)
        assert union.sensitivity_l2 == pytest.approx(
            np.sqrt(np.max(np.diag(sum(dense_parts)))), rel=1e-9
        )

    def test_large_kron_prefers_structure_but_allows_explicit_densify(self):
        # 3 factors of 16 -> n = 4096, n^2 above the preference threshold:
        # structure-preferring paths must stay matrix-free while every
        # structured quantity works without touching the dense Gram.
        workload = all_range_queries([16, 16, 16])
        assert not within_materialization_budget(4096, 4096)
        assert workload.gram_operator is not None
        assert workload.gram_source() is workload.gram_operator
        assert workload.eigenvalues.shape == (4096,)
        assert np.isfinite(workload.sensitivity_l2)
        assert workload._gram is None  # nothing above densified
        # An explicit .gram request (e.g. running the mechanism) still works
        # below the hard cap, matching the pre-operator behaviour.
        assert workload.gram.shape == (4096, 4096)

    def test_union_with_explicit_part_stays_structured_at_scale(self):
        # An explicit (wide) part must join a structured union through a
        # MatrixGramOperator, not an eager quadratic W^T W allocation.
        total = Workload(np.ones((1, 8192)))
        ranges = all_range_queries([32, 16, 16])
        union = Workload.union([total, ranges])
        assert union.gram_operator is not None
        assert union._gram is None
        expected = np.sqrt(1.0 + ranges.sensitivity_l2**2)
        assert union.sensitivity_l2 == pytest.approx(expected, rel=1e-9)

    def test_laplace_expected_error_uses_structured_trace(self):
        from repro.mechanisms.laplace_matrix import expected_workload_error_l1
        from repro.strategies import wavelet_strategy

        workload = all_range_queries([16, 16, 16])
        strategy = wavelet_strategy([16, 16, 16])
        error = expected_workload_error_l1(workload, strategy, 0.5)
        assert np.isfinite(error) and error > 0
        assert workload._gram is None  # trace ran factorized, no densification

    def test_beyond_hard_cap_dense_gram_refused(self):
        workload = all_range_queries([64, 64, 8])  # n = 32768, n^2 > hard cap
        with pytest.raises(MaterializationError):
            _ = workload.gram
        assert workload.eigenvalues.shape == (32768,)
        assert np.isfinite(workload.sensitivity_l2)


class TestStrategyFastPath:
    @given(factor_lists)
    @settings(max_examples=20, deadline=None)
    def test_kron_strategy_spectral_cache_matches_dense(self, factors):
        product = Strategy.kronecker([Strategy(f) for f in factors])
        oracle = Strategy(dense_kron(factors))
        assert product.sensitivity_l2 == pytest.approx(
            oracle.sensitivity_l2, rel=1e-9, abs=1e-12
        )
        # Numerical rank is representation-dependent when a Gram eigenvalue
        # sits near the zero thresholds (the structured path counts against
        # the relative SPECTRUM_CUTOFF, the dense fallback against the
        # machine `top * n * eps` — see the Strategy.rank docstring), so the
        # rank-agreement property only holds away from that window; reject
        # borderline spectra rather than assert the unguaranteed.
        from repro.utils.operators import SPECTRUM_CUTOFF

        values = np.clip(np.linalg.eigvalsh(oracle.gram), 0.0, None)
        top = float(values.max(initial=0.0))
        machine = top * oracle.column_count * np.finfo(float).eps
        cutoff = SPECTRUM_CUTOFF * top
        lo = 0.25 * min(machine, cutoff)
        hi = 4.0 * max(machine, cutoff)
        assume(not np.any((values > lo) & (values < hi)))
        assert product.rank == oracle.rank
        # Cached: second access must hit the stored values.
        assert product.rank == product._rank
        assert product.sensitivity_l2 == product._sensitivity_l2

    def test_nested_kron_of_implicit_factors_stays_factored(self):
        # A kron-of-kron with Gram-implicit factors must flatten instead of
        # densifying the inner product's Gram (200^2 squared exceeds the hard
        # cap, so an unflattened construction would raise or allocate ~GiB).
        factor = Strategy.from_gram(np.eye(200) + 1.0)
        inner = Strategy.kronecker([factor, factor])
        nested = Strategy.kronecker([inner, factor])
        assert nested.gram_operator is not None
        assert len(nested.gram_operator.factors) == 3
        assert nested.column_count == 200**3
        assert np.isfinite(nested.sensitivity_l2)

    def test_lazy_matrix_materialisation_respects_hard_cap(self):
        # Lazy Kronecker matrix rebuilds must raise instead of attempting a
        # multi-GiB np.kron allocation.
        big = Strategy.kronecker([Strategy(np.eye(1000)), Strategy(np.eye(1000))])
        assert not big.has_matrix
        with pytest.raises(MaterializationError):
            _ = big.matrix

    def test_normalize_sensitivity_structured(self):
        big = Strategy.kronecker(
            [Strategy(2.0 * np.eye(16)) for _ in range(3)]
        )
        assert big.column_count == 4096
        normalized = big.normalize_sensitivity()
        assert normalized.sensitivity_l2 == pytest.approx(1.0, rel=1e-9)

    def test_normalize_sensitivity_keeps_operator_after_densify(self):
        # Touching .gram once must not demote the normalized copy to a
        # dense-only strategy (that would lose the factorized trace path).
        big = Strategy.kronecker([Strategy.from_gram(4.0 * np.eye(40)) for _ in range(2)])
        _ = big.gram
        normalized = big.normalize_sensitivity()
        assert normalized.gram_operator is not None
        np.testing.assert_allclose(
            normalized.gram, normalized.gram_operator.to_dense(), atol=1e-12
        )
        assert normalized.sensitivity_l2 == pytest.approx(1.0, rel=1e-9)


class TestStructuredTrace:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_kron_kron_trace_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        shapes = [3, 4]
        w_factors = [rng.normal(size=(s, s)) for s in shapes]
        s_factors = [rng.normal(size=(s + 1, s)) for s in shapes]
        w_grams = [f.T @ f for f in w_factors]
        s_grams = [f.T @ f + 0.1 * np.eye(f.shape[1]) for f in s_factors]
        w_op = KroneckerOperator(w_grams, symmetric=True)
        s_op = KroneckerOperator(s_grams, symmetric=True)
        structured = _trace_core(w_op, s_op)
        dense = _trace_core(dense_kron(w_grams), dense_kron(s_grams))
        assert structured == pytest.approx(dense, rel=1e-8)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_eigenbasis_trace_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        w_grams = [f.T @ f for f in (rng.normal(size=(3, 3)), rng.normal(size=(4, 4)))]
        w_op = KroneckerOperator(w_grams, symmetric=True)
        basis = w_op.eigenbasis()
        spectrum = rng.uniform(0.5, 2.0, size=basis.size)
        s_op = EigenDiagOperator(basis, spectrum)
        structured = _trace_core(w_op, s_op)
        dense = _trace_core(dense_kron(w_grams), s_op.to_dense())
        assert structured == pytest.approx(dense, rel=1e-8)

    def test_eigenbasis_trace_detects_unsupported_workload(self):
        rng = np.random.default_rng(11)
        w_grams = [f.T @ f for f in (rng.normal(size=(3, 3)), rng.normal(size=(3, 3)))]
        w_op = KroneckerOperator(w_grams, symmetric=True)
        basis = w_op.eigenbasis()
        # Strategy observes nothing: zero spectrum everywhere.
        s_op = EigenDiagOperator(basis, np.zeros(basis.size))
        with pytest.raises(SingularStrategyError):
            _trace_core(w_op, s_op)

    def test_union_trace_distributes(self):
        rng = np.random.default_rng(5)
        grams = [f.T @ f for f in (rng.normal(size=(3, 3)), rng.normal(size=(4, 4)))]
        term = KroneckerOperator(grams, symmetric=True)
        union = SumOperator([term, term])
        strategy = dense_kron(grams) + np.eye(12)
        assert _trace_core(union, strategy) == pytest.approx(
            2.0 * _trace_core(dense_kron(grams), strategy), rel=1e-9
        )


class TestStackedOperator:
    def test_stacked_matches_vstack(self):
        rng = np.random.default_rng(9)
        kron_part = KroneckerOperator([rng.normal(size=(2, 3)), rng.normal(size=(3, 4))])
        dense_part = rng.normal(size=(5, 12))
        stack = StackedOperator([kron_part, dense_part])
        oracle = np.vstack([kron_part.to_dense(), dense_part])
        x = rng.normal(size=12)
        y = rng.normal(size=stack.shape[0])
        np.testing.assert_allclose(stack.matvec(x), oracle @ x, atol=1e-9)
        np.testing.assert_allclose(stack.rmatvec(y), oracle.T @ y, atol=1e-9)
        np.testing.assert_allclose(stack.gram().to_dense(), oracle.T @ oracle, atol=1e-8)
        np.testing.assert_allclose(
            stack.column_norms_squared(), np.sum(oracle**2, axis=0), atol=1e-8
        )
        batch = rng.normal(size=(stack.shape[0], 3))
        np.testing.assert_allclose(stack.rmatvec(batch), oracle.T @ batch, atol=1e-9)

    def test_sum_operator_rejects_rectangular_terms(self):
        with pytest.raises(ValueError):
            SumOperator([np.ones((2, 3))])


class TestFactorizedWeighting:
    def test_structured_constraints_match_dense_solver(self):
        workload = all_range_queries([4, 4])
        basis = workload.eigen_basis()
        assert basis is not None
        values = basis.sorted_values
        keep = values > 1e-10 * values[0]
        positions = basis.order[keep]
        constraints = KroneckerConstraints(basis, positions)
        queries = basis.queries_dense()[keep]
        dense_problem = WeightingProblem(costs=values[keep], constraints=(queries**2).T)
        structured_problem = WeightingProblem(costs=values[keep], constraints=constraints)
        # The operator must agree with the dense constraint matrix action.
        rng = np.random.default_rng(0)
        u = rng.uniform(0.1, 1.0, size=int(keep.sum()))
        np.testing.assert_allclose(
            structured_problem.constraint_values(u),
            dense_problem.constraint_values(u),
            atol=1e-10,
        )
        dense_solution = solve_dual_ascent(dense_problem)
        structured_solution = solve_dual_ascent(structured_problem)
        assert structured_solution.objective_value == pytest.approx(
            dense_solution.objective_value, rel=1e-5
        )


class TestFactorizedEigenDesign:
    def test_matches_dense_oracle_on_small_domain(self):
        workload = all_range_queries([4, 4, 4])
        dense = eigen_design(workload, factorized=False)
        fact = eigen_design(workload, factorized=True)
        assert fact.method == "eigen-design-factorized"
        assert fact.eigen_basis is not None and fact.eigen_queries is None
        dense_error = expected_workload_error(workload, dense.strategy, PRIVACY)
        fact_error = expected_workload_error(workload, fact.strategy, PRIVACY)
        assert fact_error == pytest.approx(dense_error, rel=1e-6)
        # Both designs must calibrate to the same (unit) sensitivity.
        assert fact.strategy.sensitivity_l2 == pytest.approx(
            dense.strategy.sensitivity_l2, rel=1e-8
        )

    def test_completes_on_large_domain_without_dense_gram(self, monkeypatch):
        # The acceptance bar: 3 factors, n = 2^12, no n x n allocation anywhere.
        # Every densification entry point is patched to fail, so the design
        # provably never builds an n x n array.
        from repro.utils import operators as ops

        def forbidden(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("dense materialisation during factorized eigen design")

        monkeypatch.setattr(ops.KroneckerOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.EigenDiagOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.KroneckerEigenbasis, "queries_dense", forbidden)
        workload = all_range_queries([16, 16, 16])
        result = eigen_design(workload)
        assert result.method == "eigen-design-factorized"
        assert result.strategy.column_count == 4096
        assert np.isfinite(result.strategy.sensitivity_l2)
        assert workload._gram is None and result.strategy._gram is None

    def test_error_of_uncompleted_design_computable_at_scale(self):
        workload = all_range_queries([16, 16, 16])
        result = eigen_design(workload, complete=False)
        error = expected_workload_error(workload, result.strategy, PRIVACY)
        assert np.isfinite(error) and error > 0

    def test_rank_deficient_workload_factorized(self):
        rng = np.random.default_rng(13)
        factors = [Workload(rank_deficient_factor(rng, 3)) for _ in range(2)]
        workload = Workload.kronecker(factors)
        dense = eigen_design(workload, factorized=False)
        fact = eigen_design(workload, factorized=True)
        assert fact.eigenvalues.shape == dense.eigenvalues.shape
        dense_error = expected_workload_error(workload, dense.strategy, PRIVACY)
        fact_error = expected_workload_error(workload, fact.strategy, PRIVACY)
        assert fact_error == pytest.approx(dense_error, rel=1e-5)


class TestGramPropagation:
    def test_scalar_scale_rows_propagates_gram(self):
        workload = Workload(np.arange(6.0).reshape(2, 3))
        _ = workload.gram  # precompute
        scaled = workload.scale_rows(2.0)
        assert scaled._gram is not None
        np.testing.assert_allclose(scaled._gram, 4.0 * workload.gram)
        np.testing.assert_allclose(scaled.gram, scaled.matrix.T @ scaled.matrix)

    def test_rotate_propagates_gram(self):
        rng = np.random.default_rng(2)
        workload = Workload(rng.normal(size=(4, 5)))
        _ = workload.gram
        orthogonal, _ = np.linalg.qr(rng.normal(size=(4, 4)))
        rotated = workload.rotate(orthogonal)
        assert rotated._gram is not None
        np.testing.assert_allclose(rotated.gram, rotated.matrix.T @ rotated.matrix, atol=1e-9)

    def test_rotate_with_non_orthogonal_matrix_stays_consistent(self):
        # Misuse (Prop. 6 requires orthogonal Q) must not propagate a stale Gram.
        workload = Workload(np.arange(16.0).reshape(4, 4))
        _ = workload.gram
        rotated = workload.rotate(np.diag([2.0, 1.0, 1.0, 1.0]))
        np.testing.assert_allclose(rotated.gram, rotated.matrix.T @ rotated.matrix)

    def test_rotate_with_more_queries_than_cells_skips_propagation(self):
        # Verifying orthogonality costs O(m^3); for m > n recomputing the Gram
        # lazily is cheaper, so nothing is propagated (and nothing goes stale).
        rng = np.random.default_rng(4)
        workload = Workload(rng.normal(size=(6, 3)))
        _ = workload.gram
        orthogonal, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        rotated = workload.rotate(orthogonal)
        assert rotated._gram is None
        np.testing.assert_allclose(rotated.gram, workload.gram, atol=1e-9)

    def test_explicit_kron_beyond_budget_falls_back_to_dense_eigh(self):
        # Explicit Kronecker product with n^2 over the budget: the dense
        # eigen-query matrix cannot come from the factorized basis, but the
        # classic dense eigh on the (matrix-backed) Gram still works.
        workload = Workload.kronecker([Workload(np.ones((1, 15)))] * 3)
        n = workload.column_count
        assert workload.has_matrix and n == 3375 and not within_materialization_budget(n, n)
        values, queries = workload.eigen_decomposition()
        assert values.shape == (n,) and queries.shape == (n, n)
        assert values[0] == pytest.approx(15.0**3)

    def test_unscaled_gram_not_computed_eagerly(self):
        workload = Workload(np.eye(3))
        scaled = workload.scale_rows(3.0)
        # No Gram was precomputed, so none should be propagated (laziness kept).
        assert scaled._gram is None
