"""Tests for marginal and range-marginal workloads."""

import numpy as np
import pytest

from repro.domain import Domain
from repro.exceptions import WorkloadError
from repro.workloads import (
    all_marginals,
    kway_marginals,
    kway_range_marginals,
    marginal_attribute_sets,
    marginal_workload,
    random_marginals,
    range_marginal_workload,
)


@pytest.fixture
def domain() -> Domain:
    return Domain([3, 4, 2], ["a", "b", "c"])


class TestMarginalWorkload:
    def test_single_marginal_shape(self, domain):
        workload = marginal_workload(domain, ["a", "b"])
        assert workload.shape == (12, 24)

    def test_total_marginal(self, domain):
        workload = marginal_workload(domain, [])
        np.testing.assert_array_equal(workload.matrix, np.ones((1, 24)))

    def test_marginal_answers_match_numpy(self, domain, rng):
        data = rng.integers(0, 20, domain.size).astype(float)
        workload = marginal_workload(domain, ["b"])
        expected = data.reshape(3, 4, 2).sum(axis=(0, 2)).reshape(-1)
        np.testing.assert_allclose(workload.answer(data), expected)

    def test_attribute_sets(self, domain):
        assert marginal_attribute_sets(domain, 2) == [(0, 1), (0, 2), (1, 2)]
        assert marginal_attribute_sets(domain, 0) == [()]

    def test_attribute_sets_bad_order(self, domain):
        with pytest.raises(WorkloadError):
            marginal_attribute_sets(domain, 4)


class TestKWayMarginals:
    def test_query_count(self, domain):
        workload = kway_marginals(domain, 2)
        assert workload.query_count == 3 * 4 + 3 * 2 + 4 * 2

    def test_one_way_sensitivity(self, domain):
        # Each cell appears in exactly one query per marginal.
        workload = kway_marginals(domain, 1)
        assert workload.sensitivity_l2 == pytest.approx(np.sqrt(3))

    def test_all_marginals_includes_total(self, domain):
        workload = all_marginals(domain, 1)
        assert workload.query_count == 1 + 3 + 4 + 2

    def test_all_marginals_default_order(self, domain):
        full = all_marginals(domain)
        # Sum over k of products of subset sizes.
        assert full.query_count == (1 + 3) * (1 + 4) * (1 + 2)

    def test_all_marginals_bad_order(self, domain):
        with pytest.raises(WorkloadError):
            all_marginals(domain, 5)


class TestRandomMarginals:
    def test_count_and_reproducibility(self, domain):
        first = random_marginals(domain, 5, random_state=3)
        second = random_marginals(domain, 5, random_state=3)
        np.testing.assert_array_equal(first.matrix, second.matrix)

    def test_respects_max_order(self, domain):
        workload = random_marginals(domain, 10, max_order=1, random_state=0)
        # With max_order=1 each sampled marginal has at most max(shape) rows.
        assert workload.query_count <= 10 * max(domain.shape)

    def test_rejects_bad_count(self, domain):
        with pytest.raises(WorkloadError):
            random_marginals(domain, 0)


class TestRangeMarginals:
    def test_range_marginal_query_count(self, domain):
        workload = range_marginal_workload(domain, ["a"])
        assert workload.query_count == 3 * 4 // 2

    def test_range_marginal_contains_marginal_sums(self, domain, rng):
        data = rng.integers(0, 10, domain.size).astype(float)
        workload = range_marginal_workload(domain, ["b"])
        answers = workload.answer(data)
        marginal = data.reshape(3, 4, 2).sum(axis=(0, 2))
        # The single-bucket ranges reproduce the plain marginal counts.
        for bucket in range(4):
            assert marginal[bucket] in answers

    def test_kway_range_marginal_union(self, domain):
        workload = kway_range_marginals(domain, 1)
        expected = (3 * 4 // 2) + (4 * 5 // 2) + (2 * 3 // 2)
        assert workload.query_count == expected

    def test_two_way_range_marginal_gram_psd(self, domain):
        workload = kway_range_marginals(domain, 2)
        eigenvalues = np.linalg.eigvalsh(workload.gram)
        assert np.all(eigenvalues >= -1e-8)
