"""Tests for the synthetic dataset generators (the paper's Table 1 substitutes)."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    adult_like,
    available_datasets,
    census_like,
    load_dataset,
    mixture_histogram,
    uniform_dataset,
    zipf_dataset,
)
from repro.domain import Domain
from repro.exceptions import DatasetError


class TestDatasetContainer:
    def test_validates_shape(self):
        with pytest.raises(DatasetError):
            Dataset("bad", Domain([4]), np.zeros(5))

    def test_rejects_negative_counts(self):
        with pytest.raises(DatasetError):
            Dataset("bad", Domain([2]), np.array([-1.0, 1.0]))

    def test_total_and_histogram(self):
        dataset = Dataset("ok", Domain([2, 2]), np.array([1.0, 2.0, 3.0, 4.0]))
        assert dataset.total == 10
        assert dataset.histogram().shape == (2, 2)

    def test_describe_fields(self):
        summary = uniform_dataset(shape=(8,), total=100, random_state=0).describe()
        assert summary["cells"] == 8
        assert summary["tuples"] == 100


class TestPaperDatasets:
    def test_census_matches_table1_dimensions(self):
        dataset = census_like(total=50_000, random_state=0)
        assert dataset.shape == (8, 16, 16)
        assert dataset.domain.size == 2048
        assert dataset.total == 50_000

    def test_adult_matches_table1_dimensions(self):
        dataset = adult_like(random_state=0)
        assert dataset.shape == (8, 8, 16, 2)
        assert dataset.total == 33_000

    def test_census_default_total_is_paper_scale(self):
        from repro.datasets.synthetic import CENSUS_TOTAL

        assert CENSUS_TOTAL == 15_000_000

    def test_census_is_skewed(self):
        dataset = census_like(total=200_000, random_state=1)
        counts = np.sort(dataset.data)[::-1]
        # The top 10% of cells should hold well over half the mass.
        top = counts[: max(1, len(counts) // 10)].sum()
        assert top > 0.5 * dataset.total

    def test_reproducible_by_default(self):
        first = census_like(total=10_000)
        second = census_like(total=10_000)
        np.testing.assert_array_equal(first.data, second.data)


class TestGenerators:
    def test_mixture_histogram_total(self):
        counts = mixture_histogram((4, 4), 1000, random_state=0)
        assert counts.sum() == 1000
        assert counts.shape == (16,)

    def test_mixture_histogram_validation(self):
        with pytest.raises(DatasetError):
            mixture_histogram((4,), 0)
        with pytest.raises(DatasetError):
            mixture_histogram((4,), 10, components=0)

    def test_zipf_is_more_skewed_than_uniform(self):
        zipf = zipf_dataset(shape=(256,), total=100_000, random_state=0)
        uniform = uniform_dataset(shape=(256,), total=100_000, random_state=0)
        assert zipf.data.max() > uniform.data.max()

    def test_zipf_validation(self):
        with pytest.raises(DatasetError):
            zipf_dataset(exponent=0.0)

    def test_loader_registry(self):
        assert set(available_datasets()) == {"census", "adult", "uniform", "zipf"}
        dataset = load_dataset("uniform", shape=(16,), total=500, random_state=0)
        assert dataset.total == 500

    def test_loader_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_loader_forwards_options(self):
        dataset = load_dataset("census", total=5_000, random_state=3)
        assert dataset.total == 5_000
