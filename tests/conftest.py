"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PrivacyParams
from repro.domain import Domain
from repro.workloads import all_range_queries_1d, example_workload


@pytest.fixture
def privacy() -> PrivacyParams:
    """The paper's default privacy setting."""
    return PrivacyParams(epsilon=0.5, delta=1e-4)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture
def small_domain() -> Domain:
    """A small 2-attribute domain (2 x 4 = 8 cells), as in the paper's Fig. 1."""
    return Domain([2, 4], ["gender", "gpa"])


@pytest.fixture
def fig1_workload():
    """The 8-query example workload of Fig. 1(b)."""
    return example_workload()


@pytest.fixture
def range_workload_32():
    """All 1-D range queries over 32 cells (explicit)."""
    return all_range_queries_1d(32)
