"""Shared fixtures for the test suite."""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro import PrivacyParams
from repro.domain import Domain
from repro.workloads import all_range_queries_1d, example_workload


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(enforced by pytest-timeout when installed, by a SIGALRM fallback "
        "below otherwise — concurrency tests must never hang the suite)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for ``@pytest.mark.timeout`` without pytest-timeout.

    The real plugin (installed in CI) registers as ``timeout`` and takes
    precedence; this fallback only arms an alarm when the plugin is absent,
    the platform has SIGALRM, and we are on the main thread (signal
    handlers cannot be installed elsewhere).
    """
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or item.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = float(marker.args[0] if marker.args else marker.kwargs.get("timeout", 60))

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded the {seconds:g}s timeout marker")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(params=["numpy", "jax"])
def backend(request):
    """Run the decorated test once per array backend.

    The numpy case is the bit-for-bit default path; the jax case activates
    the optional backend for the duration of the test (skipped automatically
    when jax is not installed, so NumPy-only environments see no change).
    """
    from repro.utils.backend import available_backends, backend_scope

    name = request.param
    if name not in available_backends():
        pytest.skip(f"{name} backend not installed")
    with backend_scope(name) as active:
        yield active


@pytest.fixture
def privacy() -> PrivacyParams:
    """The paper's default privacy setting."""
    return PrivacyParams(epsilon=0.5, delta=1e-4)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture
def small_domain() -> Domain:
    """A small 2-attribute domain (2 x 4 = 8 cells), as in the paper's Fig. 1."""
    return Domain([2, 4], ["gender", "gpa"])


@pytest.fixture
def fig1_workload():
    """The 8-query example workload of Fig. 1(b)."""
    return example_workload()


@pytest.fixture
def range_workload_32():
    """All 1-D range queries over 32 cells (explicit)."""
    return all_range_queries_1d(32)
