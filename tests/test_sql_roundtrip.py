"""SQL -> workload round trips against hand-built matrices.

The cell layout is the row-major cross product of the schema attributes: with
``gender in (M, F)`` first and four GPA buckets second, cells 0-3 are the
``M`` row of GPA buckets ``[1,2), [2,3), [3,3.5), [3.5,4)`` and cells 4-7 the
``F`` row.  Every test writes the expected workload matrix out by hand in
that layout, so these are oracle tests of the whole SQL compilation path —
parsing, predicate semantics (half-open BETWEEN, NOT, IN), and GROUP BY
expansion order.
"""

import numpy as np
import pytest

from repro.domain.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.exceptions import QueryParseError
from repro.relational.sql import parse_counting_query, workload_from_sql

SCHEMA = Schema(
    [
        CategoricalAttribute("gender", ["M", "F"]),
        NumericAttribute("gpa", [1.0, 2.0, 3.0, 3.5, 4.0]),
    ]
)
# Cell index = 4 * gender_bucket + gpa_bucket.
M = [1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]
F = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]


def rows_of(statements):
    workload, labels = workload_from_sql(SCHEMA, statements)
    return workload.matrix, labels


class TestWhereCompilation:
    def test_total_query(self):
        matrix, _ = rows_of(["SELECT COUNT(*) FROM s"])
        np.testing.assert_array_equal(matrix, np.ones((1, 8)))

    def test_equality_on_categorical(self):
        matrix, _ = rows_of(["SELECT COUNT(*) FROM s WHERE gender = 'F'"])
        np.testing.assert_array_equal(matrix, [F])

    def test_between_is_half_open(self):
        # BETWEEN 2.0 AND 3.5 means 2.0 <= gpa < 3.5: buckets [2,3) and
        # [3,3.5) only — the [3.5,4) bucket is NOT included.
        matrix, _ = rows_of(["SELECT COUNT(*) FROM s WHERE gpa BETWEEN 2.0 AND 3.5"])
        expected = [[0, 1, 1, 0, 0, 1, 1, 0]]
        np.testing.assert_array_equal(matrix, expected)

    def test_between_whole_range_differs_from_closed_interpretation(self):
        # Under closed-interval semantics 1.0..3.5 would still exclude the
        # top bucket; make the half-open upper edge explicit.
        matrix, _ = rows_of(["SELECT COUNT(*) FROM s WHERE gpa BETWEEN 1.0 AND 4.0"])
        np.testing.assert_array_equal(matrix, np.ones((1, 8)))

    def test_not_inverts_cell_membership(self):
        matrix, _ = rows_of(["SELECT COUNT(*) FROM s WHERE NOT gender = 'F'"])
        np.testing.assert_array_equal(matrix, [M])

    def test_not_between(self):
        matrix, _ = rows_of(
            ["SELECT COUNT(*) FROM s WHERE NOT gpa BETWEEN 2.0 AND 3.5"]
        )
        expected = [[1, 0, 0, 1, 1, 0, 0, 1]]
        np.testing.assert_array_equal(matrix, expected)

    def test_in_list_on_categorical(self):
        matrix, _ = rows_of(["SELECT COUNT(*) FROM s WHERE gender IN ('M', 'F')"])
        np.testing.assert_array_equal(matrix, np.ones((1, 8)))

    def test_not_in_combined_with_range(self):
        matrix, _ = rows_of(
            ["SELECT COUNT(*) FROM s WHERE NOT gender IN ('F') AND gpa >= 3.0"]
        )
        expected = [[0, 0, 1, 1, 0, 0, 0, 0]]
        np.testing.assert_array_equal(matrix, expected)

    def test_or_and_parentheses(self):
        matrix, _ = rows_of(
            ["SELECT COUNT(*) FROM s WHERE gender = 'M' OR (gender = 'F' AND gpa < 2.0)"]
        )
        expected = [[1, 1, 1, 1, 1, 0, 0, 0]]
        np.testing.assert_array_equal(matrix, expected)


class TestGroupByExpansion:
    def test_group_by_single_attribute(self):
        matrix, labels = rows_of(["SELECT COUNT(*) FROM s GROUP BY gender"])
        np.testing.assert_array_equal(matrix, [M, F])
        assert labels == ["gender = 'M'", "gender = 'F'"]

    def test_group_by_with_where(self):
        matrix, labels = rows_of(
            ["SELECT COUNT(*) FROM s WHERE gpa BETWEEN 2.0 AND 3.5 GROUP BY gender"]
        )
        expected = [
            [0, 1, 1, 0, 0, 0, 0, 0],  # M restricted to [2, 3.5)
            [0, 0, 0, 0, 0, 1, 1, 0],  # F restricted to [2, 3.5)
        ]
        np.testing.assert_array_equal(matrix, expected)

    def test_group_by_two_attributes_row_order(self):
        # Groups expand in row-major order over (gender, gpa): M x 4 GPA
        # buckets then F x 4 GPA buckets — i.e. the identity workload here.
        matrix, labels = rows_of(["SELECT COUNT(*) FROM s GROUP BY gender, gpa"])
        np.testing.assert_array_equal(matrix, np.eye(8))
        assert labels[0] == "gender = 'M' AND gpa in [1.0, 2.0)"
        assert labels[-1] == "gender = 'F' AND gpa in [3.5, 4.0)"

    def test_group_by_misaligned_in_predicate_rejected(self):
        # 1.5 is interior to bucket [1, 2): the predicate is misaligned with
        # the cell partition and must be rejected, not silently approximated.
        from repro.exceptions import MisalignedPredicateError

        with pytest.raises(MisalignedPredicateError):
            rows_of(["SELECT COUNT(*) FROM s WHERE NOT gpa IN (1.5) GROUP BY gender"])

    def test_group_by_unknown_attribute_raises(self):
        with pytest.raises(QueryParseError):
            rows_of(["SELECT COUNT(*) FROM s GROUP BY wealth"])


class TestStackedStatements:
    def test_union_of_statements_stacks_rows_in_order(self):
        statements = [
            "SELECT COUNT(*) FROM s",
            "SELECT COUNT(*) FROM s WHERE gender = 'M'",
            "SELECT COUNT(*) FROM s GROUP BY gender",
        ]
        matrix, labels = rows_of(statements)
        expected = np.vstack([np.ones((1, 8)), [M], [M], [F]])
        np.testing.assert_array_equal(matrix, expected)
        assert len(labels) == 4

    def test_roundtrip_counts_match_direct_evaluation(self):
        # W x must equal evaluating each compiled predicate on the histogram.
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        statements = [
            "SELECT COUNT(*) FROM s WHERE gpa >= 3.0 GROUP BY gender",
            "SELECT COUNT(*) FROM s WHERE gender = 'F' AND gpa BETWEEN 1.0 AND 3.0",
        ]
        workload, _ = workload_from_sql(SCHEMA, statements)
        answers = workload.answer(x)
        np.testing.assert_allclose(answers, [4 + 1, 2 + 6, 5 + 9])

    def test_empty_statement_list_raises(self):
        with pytest.raises(QueryParseError):
            workload_from_sql(SCHEMA, [])


class TestParserEdgeCases:
    def test_between_values_preserved(self):
        query = parse_counting_query(
            "SELECT COUNT(*) FROM s WHERE gpa BETWEEN 2.0 AND 3.5"
        )
        assert query.table == "s"
        assert query.group_by == ()

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryParseError):
            parse_counting_query("SELECT COUNT(*) FROM s WHERE gender = 'M' HAVING 1")

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryParseError):
            parse_counting_query("SELECT COUNT(*) FROM s WHERE gpa ~ 3")
