"""Tests for the baseline strategies: identity, wavelet, hierarchical."""

import numpy as np
import pytest

from repro import Workload, expected_workload_error
from repro.domain import Domain
from repro.strategies import (
    hierarchical_strategy,
    identity_strategy,
    wavelet_strategy,
    workload_strategy,
)
from repro.workloads import all_range_queries, all_range_queries_1d


class TestIdentity:
    def test_accepts_domain_int_or_dims(self):
        assert identity_strategy(8).column_count == 8
        assert identity_strategy([2, 4]).column_count == 8
        assert identity_strategy(Domain([2, 4])).column_count == 8

    def test_workload_strategy_explicit(self, fig1_workload):
        strategy = workload_strategy(fig1_workload)
        np.testing.assert_array_equal(strategy.matrix, fig1_workload.matrix)

    def test_workload_strategy_implicit(self):
        workload = Workload.from_gram(np.eye(4) * 2, query_count=9)
        strategy = workload_strategy(workload)
        assert not strategy.has_matrix
        np.testing.assert_allclose(strategy.gram, workload.gram)


class TestWavelet:
    def test_square_and_full_rank(self):
        for size in (4, 8, 12, 16):
            strategy = wavelet_strategy(size)
            assert strategy.matrix.shape == (size, size)
            assert strategy.is_full_rank

    def test_power_of_two_sensitivity_is_log_based(self):
        # For n = 2^k the unnormalised Haar strategy has every column norm
        # equal to sqrt(k + 1).
        strategy = wavelet_strategy(16)
        column_norms = np.sqrt(np.diag(strategy.gram))
        np.testing.assert_allclose(column_norms, np.sqrt(5.0))

    def test_multidimensional_is_kron(self):
        from repro.strategies.wavelet import wavelet_matrix

        strategy = wavelet_strategy([4, 2])
        expected = np.kron(wavelet_matrix(4), wavelet_matrix(2))
        np.testing.assert_allclose(strategy.matrix, expected)

    def test_beats_identity_on_large_ranges(self, privacy):
        workload = all_range_queries_1d(64)
        wavelet_error = expected_workload_error(workload, wavelet_strategy(64), privacy)
        identity_error = expected_workload_error(workload, identity_strategy(64), privacy)
        assert wavelet_error < identity_error


class TestHierarchical:
    def test_full_rank_and_supports_ranges(self):
        strategy = hierarchical_strategy(13)
        assert strategy.is_full_rank
        workload = all_range_queries_1d(13)
        assert strategy.supports(workload.gram)

    def test_row_count_binary_tree(self):
        # A binary tree over 8 leaves has 15 nodes.
        assert hierarchical_strategy(8).query_count == 15

    def test_branching_factor(self):
        strategy = hierarchical_strategy(9, branching=3)
        # 9 leaves + 3 internal + root = 13 nodes.
        assert strategy.query_count == 13

    def test_multidimensional_sensitivity_is_product(self):
        one_d = hierarchical_strategy(8)
        two_d = hierarchical_strategy([8, 8])
        assert two_d.sensitivity_l2 == pytest.approx(one_d.sensitivity_l2**2)

    def test_competitive_on_multidimensional_ranges(self, privacy):
        workload = all_range_queries([8, 8])
        error_hier = expected_workload_error(workload, hierarchical_strategy([8, 8]), privacy)
        error_identity = expected_workload_error(workload, identity_strategy([8, 8]), privacy)
        assert error_hier < error_identity
