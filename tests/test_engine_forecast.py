"""The forecasting differential tier: pre-planning moves *when* plans are
built, never *what* is answered.

What this file proves (``docs/architecture.md`` §10):

* **differential**: a pre-planned answer is bit-for-bit identical to the
  reactive answer (same per-request RNG state protocol as the executor
  oracle tests), and a correctly-forecast epoch answers with **zero** cold
  plan builds — spied on ``eigen_design`` itself, not just the counters;
* **misprediction degrades to exactly the reactive path** — the unpredicted
  shape is planned cold as if forecasting were off, and pre-warming never
  touches a budget (the accountant stays untouched and, with a durable
  ledger attached, the ledger stays empty through a pre-plan);
* **forecaster algebra** (hypothesis property tests): rates are always
  non-negative, the top-K mix is stable under permutation of how the
  history was accumulated, and history truncation is monotone
  (``truncate(truncate(h, a), b) == truncate(h, min(a, b))``);
* **persistence**: arrival history survives a real ``SIGKILL`` and a
  rebooted forecaster resumes from it, skipping (and counting) corrupt
  rows — best-effort, like every warmth write;
* the satellite regressions: structurally-identical workloads built
  separately share a ``workload_fingerprint`` (history must aggregate
  across connections), and ``Server.stats()`` keeps its documented golden
  shape (cache / stages / coalesce / store / forecast, all numeric).
"""

import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.privacy import PrivacyParams
from repro.core.workload import Workload
from repro.engine import PlanCache, Planner, Server, Session, StateStore
from repro.engine.forecast import (
    ArrivalRecorder,
    ForecastEngine,
    Forecaster,
    PrePlanner,
    truncate_history,
)
from repro.engine.planner import REFERENCE_PRIVACY, workload_fingerprint
from repro.exceptions import ReproError

PRIVACY = PrivacyParams(epsilon=4.0, delta=1e-4)
CELLS = 12

pytestmark = pytest.mark.timeout(120)


class FakeClock:
    """An injectable clock: epochs advance exactly when the test says so."""

    def __init__(self, now: float = 1_000.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def prefix_workload(cells: int = CELLS) -> Workload:
    return Workload(np.tri(cells), name=f"prefix{cells}")


def marginal_workload(cells: int = CELLS) -> Workload:
    return Workload(np.eye(cells), name=f"marginal{cells}")


def forecast_engine(planner, clock, **overrides) -> ForecastEngine:
    options = dict(
        params=REFERENCE_PRIVACY,
        epoch_seconds=10.0,
        clock=clock,
        background=False,
    )
    options.update(overrides)
    return ForecastEngine(planner, **options)


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "state.db")


# ------------------------------------------------------ fingerprint identity
class TestFingerprintIdentity:
    def test_structurally_identical_workloads_share_a_fingerprint(self):
        """The memo is keyed on the object, but the digest is keyed on the
        *content*: two connections building the same shape independently must
        aggregate into one arrival history (and one plan cache entry)."""
        first = Workload(np.tri(CELLS), name="conn-1")
        second = Workload(np.tri(CELLS), name="conn-2")
        assert first is not second
        assert workload_fingerprint(first) == workload_fingerprint(second)
        # The memo caches on each object without changing the digest.
        assert workload_fingerprint(first) == workload_fingerprint(first)

    def test_different_shapes_get_different_fingerprints(self):
        assert workload_fingerprint(prefix_workload()) != workload_fingerprint(
            marginal_workload()
        )


# ------------------------------------------------------------ truncate/rates
class TestTruncateHistory:
    def test_keeps_the_most_recent_epochs(self):
        history = {1: {"a": 1}, 5: {"a": 2}, 3: {"b": 1}}
        assert truncate_history(history, 2) == {5: {"a": 2}, 3: {"b": 1}}

    def test_zero_keeps_nothing_and_negative_raises(self):
        assert truncate_history({1: {"a": 1}}, 0) == {}
        with pytest.raises(ReproError):
            truncate_history({}, -1)


fingerprints = st.text(alphabet="abcdef", min_size=1, max_size=3)
histories = st.dictionaries(
    st.integers(min_value=0, max_value=40),
    st.dictionaries(fingerprints, st.integers(min_value=0, max_value=50), max_size=4),
    max_size=6,
)


class TestForecasterProperties:
    @settings(max_examples=60, deadline=None)
    @given(history=histories, alpha=st.floats(min_value=0.01, max_value=1.0))
    def test_rates_are_non_negative(self, history, alpha):
        rates = Forecaster(alpha=alpha).rates(history)
        assert all(rate >= 0 for rate in rates.values())
        # ... and never invent fingerprints that were never observed.
        observed = {f for counts in history.values() for f in counts}
        assert set(rates) == observed

    @settings(max_examples=60, deadline=None)
    @given(history=histories, data=st.data())
    def test_top_k_is_stable_under_permutation(self, history, data):
        """The mix is a function of the history's *content*: accumulating the
        same arrivals in any order (dict insertion order included) forecasts
        identically."""
        items = list(history.items())
        shuffled_epochs = data.draw(st.permutations(items))
        permuted = {}
        for epoch, counts in shuffled_epochs:
            entries = data.draw(st.permutations(list(counts.items())))
            permuted[epoch] = dict(entries)
        forecaster = Forecaster(top_k=3)
        assert forecaster.mix(history) == forecaster.mix(permuted)

    @settings(max_examples=60, deadline=None)
    @given(
        history=histories,
        first=st.integers(min_value=0, max_value=10),
        second=st.integers(min_value=0, max_value=10),
    )
    def test_truncation_is_monotone(self, history, first, second):
        composed = truncate_history(truncate_history(history, first), second)
        assert composed == truncate_history(history, min(first, second))


class TestForecaster:
    def test_rates_decay_for_a_shape_that_stops_arriving(self):
        forecaster = Forecaster(alpha=0.5)
        steady = {0: {"a": 4}, 1: {"a": 4}, 2: {"a": 4}}
        gone = {0: {"a": 4}, 1: {}, 2: {}}
        assert forecaster.rates(gone)["a"] < forecaster.rates(steady)["a"]

    def test_gap_epochs_count_as_zero(self):
        # Epoch 1 is absent entirely; the rate must decay exactly as if an
        # explicit zero-count epoch had been recorded.
        forecaster = Forecaster(alpha=0.5)
        explicit = forecaster.rates({0: {"a": 8}, 1: {"a": 0}, 2: {"a": 0}})
        gapped = forecaster.rates({0: {"a": 8}, 2: {}})
        assert gapped["a"] == pytest.approx(explicit["a"])

    def test_mix_orders_hottest_first_and_drops_zero(self):
        history = {0: {"hot": 10, "warm": 2, "cold": 0}}
        mix = Forecaster(top_k=8).mix(history)
        assert [fingerprint for fingerprint, _ in mix] == ["hot", "warm"]
        assert all(rate > 0 for _, rate in mix)

    def test_mix_respects_top_k(self):
        history = {0: {f"f{i}": i + 1 for i in range(6)}}
        assert len(Forecaster(top_k=2).mix(history)) == 2

    def test_invalid_knobs_raise(self):
        with pytest.raises(ReproError):
            Forecaster(alpha=0.0)
        with pytest.raises(ReproError):
            Forecaster(top_k=0)


# ------------------------------------------------------------------ recorder
class TestArrivalRecorder:
    def test_counts_per_epoch_and_ring_buffers(self):
        clock = FakeClock()
        recorder = ArrivalRecorder(
            "t", epoch_seconds=10.0, history_epochs=2, clock=clock
        )
        recorder.record("a")
        recorder.record("a")
        clock.advance(10.0)
        recorder.record("b")
        clock.advance(10.0)
        recorder.record("c")
        history = recorder.history()
        # history_epochs=2: the oldest epoch fell off the ring.
        assert len(history) == 2
        assert [sorted(counts) for _, counts in sorted(history.items())] == [
            ["b"],
            ["c"],
        ]
        assert recorder.recorded == 4

    def test_roll_flushes_only_completed_epochs(self, store_path):
        clock = FakeClock()
        with StateStore(store_path) as store:
            recorder = ArrivalRecorder(
                "t", epoch_seconds=10.0, store=store, clock=clock
            )
            recorder.record("a")
            assert recorder.roll() is False  # the active epoch stays pending
            assert store.load_arrivals("t") == {}
            clock.advance(10.0)
            recorder.record("a")
            assert recorder.roll() is True
            epoch = sorted(store.load_arrivals("t"))[0]
            assert store.load_arrivals("t") == {epoch: {"a": 1}}
            # flush() takes the active epoch too (the shutdown path), and an
            # incremental re-flush never double-counts: deltas are consumed.
            recorder.flush()
            recorder.flush()
            assert sum(
                count
                for counts in store.load_arrivals("t").values()
                for count in counts.values()
            ) == recorder.recorded == 2

    def test_resumes_persisted_history_on_construction(self, store_path):
        clock = FakeClock()
        with StateStore(store_path) as store:
            first = ArrivalRecorder("t", epoch_seconds=10.0, store=store, clock=clock)
            first.record("a", count=3)
            first.flush()
            second = ArrivalRecorder("t", epoch_seconds=10.0, store=store, clock=clock)
            assert second.history() == first.history()

    def test_invalid_knobs_raise(self):
        with pytest.raises(ReproError):
            ArrivalRecorder("t", epoch_seconds=0.0)
        with pytest.raises(ReproError):
            ArrivalRecorder("t", history_epochs=0)


# ------------------------------------------------------- differential tier
class TestDifferential:
    """Pre-planning changes when plans are built, never what is answered."""

    def ask(self, planner, workload, *, seed=7):
        session = Session(
            PRIVACY, data=np.arange(float(CELLS)), planner=planner
        )
        answer = session.ask(
            workload, epsilon=0.5, random_state=np.random.default_rng(seed)
        )
        return session, answer

    def test_preplanned_answer_is_bit_for_bit_reactive(self):
        workload = prefix_workload()
        # Reactive: a cold planner builds the plan when the request arrives.
        reactive_planner = Planner()
        _, reactive = self.ask(reactive_planner, workload)
        # Forecast: the engine observed the shape last epoch and pre-planned
        # it before the request; the request then hits the warm cache.
        clock = FakeClock()
        forecast_planner = Planner()
        engine = forecast_engine(forecast_planner, clock)
        engine.record("tenant", workload)
        clock.advance(10.0)
        assert engine.tick() == 1
        assert forecast_planner.plans_built == 1
        _, preplanned = self.ask(forecast_planner, workload)
        assert forecast_planner.plans_built == 1  # the request built nothing
        np.testing.assert_array_equal(preplanned.answers, reactive.answers)
        assert preplanned.expected_error == reactive.expected_error
        assert preplanned.mechanism == reactive.mechanism

    def test_forecast_hit_epoch_answers_with_zero_plans_built(self, monkeypatch):
        """The spy proof: after a correct forecast, a whole epoch of arrivals
        answers without ``eigen_design`` running even once."""
        import repro.engine.planner as planner_module

        calls = {"count": 0}
        real = planner_module.eigen_design

        def spied(workload, **options):
            calls["count"] += 1
            return real(workload, **options)

        monkeypatch.setattr(planner_module, "eigen_design", spied)
        clock = FakeClock()
        planner = Planner()
        engine = forecast_engine(planner, clock, top_k=4)
        shapes = [prefix_workload(), marginal_workload()]
        for workload in shapes:
            for _ in range(3):
                engine.record("tenant", workload)
        clock.advance(10.0)
        built = engine.tick()
        assert built == len(shapes)
        assert calls["count"] > 0  # pre-planning did the cold optimization
        built_at_tick = planner.plans_built
        calls["count"] = 0
        # The forecast epoch: every predicted shape arrives and is answered.
        session = Session(PRIVACY, data=np.arange(float(CELLS)), planner=planner)
        for workload in shapes:
            answer = session.ask(workload, epsilon=0.3)
            # Pre-warmed cache hit, or better: free reuse of an earlier
            # release — either way, nothing was planned cold.
            assert answer.plan_cache_hit or answer.served_from_release
            engine.record("tenant", workload)
        assert calls["count"] == 0
        assert planner.plans_built == built_at_tick
        stats = engine.stats()
        assert stats["hits"] == len(shapes)
        assert stats["misses"] == 0

    def test_misprediction_degrades_to_exactly_the_reactive_path(self):
        clock = FakeClock()
        planner = Planner()
        engine = forecast_engine(planner, clock)
        engine.record("tenant", prefix_workload())
        clock.advance(10.0)
        engine.tick()  # predicts the prefix shape
        built_at_tick = planner.plans_built
        # ... but a different shape arrives: planned cold, exactly like a
        # forecast-free engine, and answered bit-for-bit the same.
        surprise = marginal_workload()
        engine.record("tenant", surprise)
        _, mispredicted = self.ask(planner, surprise)
        assert planner.plans_built == built_at_tick + 1
        _, reactive = self.ask(Planner(), surprise)
        np.testing.assert_array_equal(mispredicted.answers, reactive.answers)
        stats = engine.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0

    def test_prewarming_touches_no_budget(self, store_path):
        """No accountant exists on the forecast path: through a full record +
        tick cycle the durable ledger stays empty and a session's accountant
        stays untouched."""
        with StateStore(store_path) as store:
            planner = Planner()
            clock = FakeClock()
            engine = forecast_engine(planner, clock, store=store)
            session = Session(
                PRIVACY,
                data=np.arange(float(CELLS)),
                planner=planner,
                store=store,
                tenant="alice",
            )
            engine.record("alice", prefix_workload())
            clock.advance(10.0)
            assert engine.tick() == 1
            assert session.accountant.spent_epsilon == 0.0
            assert store.ledger_counts("alice") == {}
            # The paid request that then hits the pre-warmed plan is the
            # first and only thing the ledger ever sees.
            session.ask(prefix_workload(), epsilon=0.5)
            assert session.accountant.spent_epsilon == pytest.approx(0.5)
            assert sum(store.ledger_counts("alice").values()) == 1

    def test_union_preplan_serves_the_forecast_batch(self):
        """The paper's premise operationalized: one strategy designed for the
        predicted union answers a batch of the mix with no cold build."""
        clock = FakeClock()
        planner = Planner()
        engine = forecast_engine(planner, clock, top_k=4)
        hot, warm = prefix_workload(), marginal_workload()
        for _ in range(5):
            engine.record("tenant", hot)
        engine.record("tenant", warm)
        clock.advance(10.0)
        engine.tick()
        assert engine.stats()["union_preplans"] == 1
        built_at_tick = planner.plans_built
        # The batch unions its members exactly like the pre-planner did
        # (content-addressed: the union's fingerprint ignores its name), so
        # the collective request finds the union plan already warm.
        session = Session(PRIVACY, data=np.arange(float(CELLS)), planner=planner)
        mix_order = [fp for fp, _ in engine.mix()]
        members = sorted(
            [hot, warm], key=lambda w: mix_order.index(workload_fingerprint(w))
        )
        answers = session.ask_batch(members, epsilon=0.5)
        assert len(answers) == 2
        assert planner.plans_built == built_at_tick
        assert answers[0].plan_cache_hit

    def test_unplannable_shape_never_takes_preplanning_down(self):
        class ExplodingPlanner(Planner):
            def plan(self, workload, params, *, key=None):
                raise ReproError("strategy optimization failed")

        preplanner = PrePlanner(ExplodingPlanner(), REFERENCE_PRIVACY)
        built = preplanner.preplan([("fp", prefix_workload(), 1.0)])
        assert built == 0  # swallowed: pre-warming must never raise
        assert preplanner.prewarm_failures == 1


# --------------------------------------------------------------- the engine
class TestForecastEngine:
    def test_prewarm_skips_already_warm_shapes(self):
        clock = FakeClock()
        planner = Planner()
        engine = forecast_engine(planner, clock)
        workload = prefix_workload()
        engine.record("tenant", workload)
        clock.advance(10.0)
        assert engine.tick() == 1
        engine.record("tenant", workload)
        clock.advance(10.0)
        assert engine.tick() == 0  # still predicted, already warm
        stats = engine.stats()
        assert stats["prewarm_planned"] == 1
        assert stats["prewarm_already_warm"] == 1
        assert planner.plans_built == 1

    def test_histories_aggregate_across_tenants(self):
        clock = FakeClock()
        engine = forecast_engine(Planner(), clock)
        workload = prefix_workload()
        engine.record("alice", workload)
        engine.record("bob", workload)
        history = engine.aggregate_history()
        (counts,) = history.values()
        assert counts[workload_fingerprint(workload)] == 2

    def test_budget_advice_is_forecast_weighted_and_read_only(self):
        clock = FakeClock()
        engine = forecast_engine(Planner(), clock, top_k=4)
        hot, warm = prefix_workload(), marginal_workload()
        for _ in range(3):
            engine.record("tenant", hot)
        engine.record("tenant", warm)
        session = Session(PRIVACY, data=np.arange(float(CELLS)))
        advice = engine.budget_advice(session.accountant, epochs=2)
        hot_fp, warm_fp = workload_fingerprint(hot), workload_fingerprint(warm)
        assert advice[hot_fp] > advice[warm_fp] > 0
        # One epoch's slice of the remaining budget, split proportionally.
        assert sum(advice.values()) == pytest.approx(PRIVACY.epsilon / 2)
        assert session.accountant.spent_epsilon == 0.0  # advisory only

    def test_background_mode_preplans_without_tick(self):
        clock = FakeClock()
        planner = Planner()
        engine = forecast_engine(planner, clock, background=True)
        workload = prefix_workload()
        engine.record("tenant", workload)
        clock.advance(10.0)
        # The epoch boundary is noticed by the next arrival, which schedules
        # pre-planning on the background thread; close() joins it.
        engine.record("tenant", workload)
        engine.close()
        assert planner.plans_built == 1
        assert engine.stats()["epochs_rolled"] == 1


# ------------------------------------------------------------- server layer
class TestServerForecast:
    def test_server_wires_recording_and_stats(self):
        with Server(
            PRIVACY, data=np.arange(float(CELLS)), workers=2, forecast=True
        ) as server:
            server.ask("alice", np.tri(CELLS), epsilon=0.3)
            forecast = server.stats()["forecast"]
            assert forecast["recorded"] == 1
            assert forecast["shapes"] == 1
            assert server.forecast is not None

    def test_server_budget_advice(self):
        clock = FakeClock()
        planner = Planner()
        engine = forecast_engine(planner, clock)
        with Server(
            PRIVACY,
            data=np.arange(float(CELLS)),
            workers=2,
            planner=planner,
            forecast=engine,
        ) as server:
            server.ask("alice", np.tri(CELLS), epsilon=0.5)
            advice = server.budget_advice("alice")
            assert len(advice) == 1
            (suggestion,) = advice.values()
            assert suggestion == pytest.approx(PRIVACY.epsilon - 0.5)

    def test_forecast_off_by_default(self):
        with Server(PRIVACY, data=np.arange(float(CELLS)), workers=2) as server:
            assert server.forecast is None
            assert server.stats()["forecast"] is None
            assert server.budget_advice("nobody") == {}


# --------------------------------------------------------- stats golden shape
def assert_all_numeric(mapping, path=""):
    for key, value in mapping.items():
        where = f"{path}.{key}" if path else str(key)
        if isinstance(value, dict):
            assert_all_numeric(value, where)
        else:
            assert isinstance(
                value, (int, float, bool)
            ), f"stats counter {where} is {type(value).__name__}, not numeric"


class TestServerStatsGoldenShape:
    def test_every_documented_section_is_present_and_numeric(self, store_path):
        """The bench harness reads these sections by name; a stats refactor
        that drops or de-numerifies one must fail here, not in the bench."""
        with Server(
            PRIVACY,
            data=np.arange(float(CELLS)),
            workers=2,
            store=store_path,
            forecast=True,
        ) as server:
            server.ask("alice", np.tri(CELLS), epsilon=0.3)
            stats = server.stats()
        for section in (
            "tenants",
            "answers_served",
            "workers",
            "shards",
            "queue_depth",
            "plans_built",
            "plan_requests",
        ):
            assert isinstance(stats[section], (int, float)), section
        assert stats["execution"] in ("thread", "process")
        # Counter sections: present, and numeric all the way down.
        assert_all_numeric(stats["coalesce"], "coalesce")
        assert_all_numeric(stats["stages"], "stages")
        assert_all_numeric(stats["plan_cache"], "plan_cache")
        assert_all_numeric(stats["forecast"], "forecast")
        store_stats = dict(stats["store"])
        assert store_stats.pop("available") is True
        assert store_stats.pop("path")  # the one documented non-numeric field
        assert_all_numeric(store_stats, "store")
        # Per-tenant spend attribution stays numeric too.
        assert_all_numeric(stats["spent"]["alice"], "spent.alice")


# ------------------------------------------------------------- persistence
FORECAST_DRIVER = textwrap.dedent(
    """
    import os
    import signal
    import sys

    import numpy as np

    from repro.core.privacy import PrivacyParams
    from repro.engine import Server

    server = Server(
        PrivacyParams(4.0, 1e-4),
        data=np.arange(float({cells})),
        workers=2,
        store=sys.argv[1],
        forecast=True,
    )
    for _ in range(3):
        server.ask("alice", np.tri({cells}), epsilon=0.2)
    server.forecast.flush()
    print("FLUSHED", flush=True)
    os.kill(os.getpid(), signal.SIGKILL)
    """
).format(cells=CELLS)


def run_forecast_driver(store_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    return subprocess.run(
        [sys.executable, "-c", FORECAST_DRIVER, store_path],
        env=env,
        capture_output=True,
        text=True,
        timeout=90,
    )


class TestForecastPersistence:
    def test_history_survives_sigkill_and_forecaster_resumes(self, store_path):
        completed = run_forecast_driver(store_path)
        assert completed.returncode == -signal.SIGKILL, completed.stderr
        assert "FLUSHED" in completed.stdout
        with StateStore(store_path) as store:
            history = store.load_arrivals("alice")
            assert sum(
                count for counts in history.values() for count in counts.values()
            ) == 3
            # The rebooted engine resumes from the persisted history: the
            # crashed process's arrivals forecast the first epoch here.
            clock = FakeClock(now=10_000_000.0)
            planner = Planner()
            engine = forecast_engine(planner, clock, store=store)
            engine.recorder("alice")  # loads the tenant's history
            mix = engine.mix()
            assert len(mix) == 1
            assert engine.stats()["shapes"] == 1  # exemplar survived too
            assert engine.tick() == 1  # pre-plans purely from persisted state
            assert planner.plans_built == 1

    def test_corrupt_rows_are_skipped_and_counted(self, store_path):
        with StateStore(store_path) as store:
            store.add_arrivals("alice", 5, {"good": 2})
            store.save_shape("good", prefix_workload())
        # Poison the history behind the store's back.
        raw = sqlite3.connect(store_path)
        raw.execute(
            "INSERT INTO arrivals (tenant, fingerprint, epoch, count)"
            " VALUES ('alice', 'bad-epoch', 'not-an-epoch', 1)"
        )
        raw.execute(
            "INSERT INTO arrivals (tenant, fingerprint, epoch, count)"
            " VALUES ('alice', 'bad-count', 6, -9)"
        )
        raw.execute(
            "INSERT INTO shapes (fingerprint, payload, created)"
            " VALUES ('bad-shape', X'DEADBEEF', 'now')"
        )
        raw.commit()
        raw.close()
        with StateStore(store_path) as store:
            history = store.load_arrivals("alice")
            assert history == {5: {"good": 2}}
            shapes = store.load_shapes()
            assert [fingerprint for fingerprint, _ in shapes] == ["good"]
            assert store.load_failures == 3
            # The forecaster built on top sees only the clean rows.
            engine = forecast_engine(Planner(), FakeClock(), store=store)
            engine.recorder("alice")
            assert engine.mix() == [("good", pytest.approx(2 * 0.3))]


# -------------------------------------------- satellite: locked shared state
class TestForecastLockDiscipline:
    """Regressions for the two races ``repro-lint`` surfaced in bring-up
    (see ``docs/linting.md``): the exemplar-persist membership check ran
    outside the engine lock (two racing first arrivals of a new shape both
    persisted it), and the ``PrePlanner`` counters were bare ``+=``,
    raced by the background pre-plan thread against synchronous ticks."""

    def test_concurrent_first_arrivals_persist_the_exemplar_once(self):
        class CountingStore:
            def __init__(self):
                self.saved = []
                self._lock = threading.Lock()

            def load_shapes(self):
                return []

            def load_arrivals(self, tenant, last_epochs):
                return {}

            def save_shape(self, fingerprint, workload):
                time.sleep(0.01)  # widen the claim-then-write window
                with self._lock:
                    self.saved.append(fingerprint)

        store = CountingStore()
        engine = forecast_engine(Planner(), FakeClock(), store=store)
        workload = prefix_workload()
        barrier = threading.Barrier(8)

        def arrive():
            barrier.wait()
            engine.record("tenant", workload)

        threads = [threading.Thread(target=arrive) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The persist slot is claimed under the engine lock: exactly one
        # writer, no matter how the eight arrivals interleave.
        assert store.saved == [workload_fingerprint(workload)]

    def test_preplanner_counters_are_exact_under_concurrent_prewarms(self):
        planner = Planner()
        preplanner = PrePlanner(planner, REFERENCE_PRIVACY)
        workload = prefix_workload()
        planner.plan(workload, REFERENCE_PRIVACY)  # warm the shared cache
        barrier = threading.Barrier(8)

        def prewarm():
            barrier.wait()
            for _ in range(50):
                preplanner._prewarm(workload)

        threads = [threading.Thread(target=prewarm) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Locked increments lose no updates: 8 threads x 50 warm hits.
        assert preplanner.prewarm_already_warm == 400
        assert preplanner.prewarm_planned == 0
        assert preplanner.prewarm_failures == 0
