"""Tests for the direct Gram-matrix reference solver (repro.optimize.exact_gram)."""

import numpy as np
import pytest

from repro import (
    PrivacyParams,
    Workload,
    eigen_design,
    expected_workload_error,
    minimum_error_bound,
)
from repro.exceptions import OptimizationError
from repro.optimize import optimal_gram_strategy, strategy_from_gram
from repro.workloads import all_range_queries_1d, cdf_workload, example_workload, kway_marginals

PRIVACY = PrivacyParams(0.5, 1e-4)


class TestStrategyFromGram:
    def test_gram_round_trip(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(6, 4))
        gram = matrix.T @ matrix
        strategy = strategy_from_gram(gram)
        np.testing.assert_allclose(strategy.gram, gram, atol=1e-9)

    def test_rank_deficient_gram(self):
        gram = np.outer([1.0, 2.0, 0.0], [1.0, 2.0, 0.0])
        strategy = strategy_from_gram(gram)
        np.testing.assert_allclose(strategy.gram, gram, atol=1e-9)
        assert strategy.query_count == 1

    def test_zero_gram_rejected(self):
        with pytest.raises(OptimizationError):
            strategy_from_gram(np.zeros((3, 3)))


class TestOptimalGramStrategy:
    def test_respects_sensitivity_constraint(self):
        result = optimal_gram_strategy(example_workload())
        assert result.strategy.sensitivity_l2 <= 1.0 + 1e-9

    def test_objective_trace_is_monotone(self):
        result = optimal_gram_strategy(example_workload())
        trace = result.objective_trace
        assert all(b <= a + 1e-12 for a, b in zip(trace, trace[1:]))

    def test_error_between_bound_and_eigen_design(self):
        """The reference solver sits between the lower bound and the eigen design."""
        for workload in (example_workload(), all_range_queries_1d(32)):
            eigen_error = expected_workload_error(
                workload, eigen_design(workload).strategy, PRIVACY
            )
            exact_error = expected_workload_error(
                workload, optimal_gram_strategy(workload).strategy, PRIVACY
            )
            bound = minimum_error_bound(workload, PRIVACY)
            assert exact_error <= eigen_error * 1.01
            assert exact_error >= bound * 0.99

    def test_warm_start_from_eigen_design_never_regresses(self):
        workload = all_range_queries_1d(16)
        design = eigen_design(workload)
        eigen_error = expected_workload_error(workload, design.strategy, PRIVACY)
        result = optimal_gram_strategy(workload, warm_start=design.strategy)
        warm_error = expected_workload_error(workload, result.strategy, PRIVACY)
        assert warm_error <= eigen_error * (1 + 1e-9)

    def test_improves_on_eigen_design_for_cdf(self):
        """The CDF workload is the paper's hard case for the eigen basis (Sec. 5.4)."""
        workload = cdf_workload(32)
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        exact_error = expected_workload_error(
            workload, optimal_gram_strategy(workload).strategy, PRIVACY
        )
        assert exact_error < eigen_error

    def test_example4_certifies_near_optimality(self):
        """Reproduces the Example 4 claim: the eigen design is within ~2% of optimal."""
        workload = example_workload()
        eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, PRIVACY)
        exact_error = expected_workload_error(
            workload, optimal_gram_strategy(workload).strategy, PRIVACY
        )
        assert eigen_error / exact_error <= 1.02

    def test_marginal_workload_matches_bound(self):
        workload = kway_marginals([4, 4, 4], 2)
        exact_error = expected_workload_error(
            workload, optimal_gram_strategy(workload).strategy, PRIVACY
        )
        bound = minimum_error_bound(workload, PRIVACY)
        assert exact_error == pytest.approx(bound, rel=0.02)

    def test_identity_workload_optimum_is_identity(self):
        workload = Workload.identity(8)
        result = optimal_gram_strategy(workload)
        error = expected_workload_error(workload, result.strategy, PRIVACY)
        identity_error = expected_workload_error(
            workload, strategy_from_gram(np.eye(8)), PRIVACY
        )
        assert error == pytest.approx(identity_error, rel=1e-3)

    def test_rejects_oversized_domains(self):
        workload = Workload.from_gram(np.eye(600), query_count=600)
        with pytest.raises(OptimizationError):
            optimal_gram_strategy(workload)

    def test_result_fields_populated(self):
        result = optimal_gram_strategy(example_workload())
        assert result.gram.shape == (8, 8)
        assert result.objective > 0
        assert result.iterations >= 0
        assert isinstance(result.converged, bool)
        assert len(result.objective_trace) >= 1
