"""Integration test: a full private-release workflow across subpackages.

Simulates what a data custodian would actually do with this library:

tuples (relational) -> schema + data vector -> workload built from SQL and
marginals -> eigen-design strategy -> matrix mechanism release -> published
error bars (analysis) -> budget accounting for a second release (composition).

The goal is to make sure the public APIs of the subpackages compose without
glue code and that the released numbers satisfy the documented guarantees.
"""

import numpy as np
import pytest

from repro import MatrixMechanism, PrivacyParams, eigen_design, expected_workload_error
from repro.analysis import (
    answer_standard_deviations,
    confidence_intervals,
    epsilon_for_target_error,
)
from repro.domain.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.mechanisms import CompositionAccountant, PrivacyAccountant
from repro.relational import Relation, WorkloadBuilder, data_vector
from repro.strategies import wavelet_strategy


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema(
        [
            CategoricalAttribute("work", ["private", "public", "self"]),
            NumericAttribute("age", [18.0, 30.0, 45.0, 60.0, 90.0]),
            CategoricalAttribute("income", ["low", "high"]),
        ]
    )


@pytest.fixture(scope="module")
def people(schema) -> Relation:
    rng = np.random.default_rng(123)
    count = 20_000
    return Relation(
        {
            "work": rng.choice(["private", "public", "self"], size=count, p=[0.7, 0.2, 0.1]).tolist(),
            "age": rng.uniform(18.0, 89.9, size=count),
            "income": rng.choice(["low", "high"], size=count, p=[0.75, 0.25]).tolist(),
        },
        name="people",
    )


@pytest.fixture(scope="module")
def release(schema, people):
    privacy = PrivacyParams(epsilon=1.0, delta=1e-5)
    workload, labels = (
        WorkloadBuilder(schema, name="release-2026")
        .add_total()
        .add_marginal(["work"])
        .add_marginal(["income"])
        .add_marginal(["work", "income"])
        .add_cdf("age")
        .add_sql("SELECT COUNT(*) FROM people WHERE income = 'high' AND age >= 45")
        .build()
    )
    x = data_vector(people, schema)
    design = eigen_design(workload)
    mechanism = MatrixMechanism(design.strategy, privacy)
    result = mechanism.run(workload, x, random_state=7)
    return {
        "privacy": privacy,
        "workload": workload,
        "labels": labels,
        "x": x,
        "design": design,
        "result": result,
    }


class TestPrivateRelease:
    def test_workload_dimensions(self, release, schema):
        workload = release["workload"]
        assert workload.column_count == schema.domain.size == 3 * 4 * 2
        assert workload.query_count == len(release["labels"])

    def test_eigen_design_beats_fixed_baseline(self, release, schema):
        workload = release["workload"]
        privacy = release["privacy"]
        eigen_error = expected_workload_error(workload, release["design"].strategy, privacy)
        wavelet_error = expected_workload_error(workload, wavelet_strategy(schema.domain.shape), privacy)
        assert eigen_error <= wavelet_error * 1.0001

    def test_answers_are_mutually_consistent(self, release):
        """Marginal cells sum to the total because answers derive from one estimate."""
        labels = release["labels"]
        answers = release["result"].answers
        total = answers[labels.index("total")]
        work_cells = [answers[i] for i, label in enumerate(labels) if label.startswith("marginal(work)[")]
        assert sum(work_cells) == pytest.approx(total, abs=1e-6)
        joint_cells = [
            answers[i] for i, label in enumerate(labels) if label.startswith("marginal(work, income)[")
        ]
        assert sum(joint_cells) == pytest.approx(total, abs=1e-6)

    def test_release_accuracy_is_within_published_error_bars(self, release):
        workload = release["workload"]
        privacy = release["privacy"]
        strategy = release["design"].strategy
        truth = workload.answer(release["x"])
        answers = release["result"].answers
        intervals = confidence_intervals(answers, workload, strategy, privacy, confidence=0.999)
        coverage = np.mean((truth >= intervals[:, 0]) & (truth <= intervals[:, 1]))
        # One run of 29 queries at 99.9% marginal confidence: expect full coverage.
        assert coverage >= 0.9

    def test_observed_noise_is_plausible_under_reported_deviations(self, release):
        workload = release["workload"]
        truth = workload.answer(release["x"])
        deviations = answer_standard_deviations(
            workload, release["design"].strategy, release["privacy"]
        )
        residuals = np.abs(release["result"].answers - truth)
        # No query misses by more than six reported standard deviations.
        assert np.all(residuals <= 6 * deviations + 1e-9)

    def test_budget_planning_matches_release_setting(self, release):
        workload = release["workload"]
        strategy = release["design"].strategy
        privacy = release["privacy"]
        achieved = expected_workload_error(workload, strategy, privacy)
        required = epsilon_for_target_error(workload, strategy, achieved, delta=privacy.delta)
        assert required == pytest.approx(privacy.epsilon, rel=1e-9)

    def test_second_release_respects_budget(self, release):
        privacy = release["privacy"]
        accountant = PrivacyAccountant(budget=PrivacyParams(2.0, 1e-4))
        accountant.spend(privacy, label="release-2026")
        accountant.spend(privacy, label="release-2027")
        assert accountant.remaining is None or accountant.remaining.epsilon <= 2.0
        composition = CompositionAccountant(target_delta=1e-4)
        composition.record(privacy)
        composition.record(privacy)
        assert composition.tightest().epsilon <= composition.basic().epsilon + 1e-12

    def test_synthetic_estimate_can_answer_new_queries(self, release, schema):
        """The released estimate acts as a synthetic table for follow-up queries."""
        estimate = release["result"].estimate
        x = release["x"]
        follow_up = np.zeros(schema.domain.size)
        # All people with income 'high' (second bucket of the last attribute).
        follow_up[1::2] = 1.0
        true_answer = float(follow_up @ x)
        synthetic_answer = float(follow_up @ estimate)
        deviation = abs(synthetic_answer - true_answer)
        assert deviation <= 0.05 * max(true_answer, 1.0) + 200.0
