"""Tests for the query-answering engine: mechanisms, planner, cache, session."""

import numpy as np
import pytest

from repro.core.privacy import PrivacyParams
from repro.core.strategy import Strategy
from repro.core.workload import Workload
from repro.core.error import expected_workload_error
from repro.domain.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.engine import (
    BudgetExceededError,
    DirectMechanism,
    Mechanism,
    PlanCache,
    Planner,
    Session,
    StrategyMechanism,
    analyze_workload,
    workload_fingerprint,
)
from repro.exceptions import PrivacyError, ReproError, WorkloadError
from repro.mechanisms.laplace_matrix import expected_workload_error_l1
from repro.relational.sql import workload_from_sql
from repro.relational.vectorize import sample_relation
from repro.workloads import all_range_queries_1d

PRIVACY = PrivacyParams(epsilon=0.5, delta=1e-4)
PURE = PrivacyParams(epsilon=0.5, delta=0.0)


@pytest.fixture
def schema():
    return Schema(
        [
            CategoricalAttribute("gender", ["M", "F"]),
            NumericAttribute("gpa", [1.0, 2.0, 3.0, 3.5, 4.0]),
        ]
    )


@pytest.fixture
def data():
    return np.array([10.0, 25.0, 30.0, 5.0, 8.0, 22.0, 41.0, 9.0])


# ---------------------------------------------------------------- mechanisms
class TestMechanismProtocol:
    def test_strategy_mechanism_satisfies_protocol(self):
        mechanism = StrategyMechanism(Strategy.identity(4))
        assert isinstance(mechanism, Mechanism)
        assert mechanism.releases_estimate

    def test_direct_mechanism_satisfies_protocol(self):
        mechanism = DirectMechanism("gaussian")
        assert isinstance(mechanism, Mechanism)
        assert not mechanism.releases_estimate

    def test_strategy_mechanism_expected_error_matches_core(self):
        workload = all_range_queries_1d(16)
        strategy = Strategy.identity(16)
        mechanism = StrategyMechanism(strategy)
        assert mechanism.expected_error(workload, PRIVACY) == pytest.approx(
            expected_workload_error(workload, strategy, PRIVACY)
        )
        assert mechanism.expected_error(workload, PURE) == pytest.approx(
            expected_workload_error_l1(workload, strategy, PURE)
        )

    def test_strategy_mechanism_runs_both_regimes(self):
        workload = Workload.identity(8)
        mechanism = StrategyMechanism(Strategy.identity(8))
        x = np.arange(8.0)
        gaussian = mechanism.run(workload, x, PRIVACY, random_state=0)
        laplace = mechanism.run(workload, x, PURE, random_state=0)
        assert gaussian.estimate is not None and laplace.estimate is not None
        np.testing.assert_allclose(gaussian.answers, workload.answer(gaussian.estimate))
        np.testing.assert_allclose(laplace.answers, workload.answer(laplace.estimate))
        assert gaussian.mechanism == laplace.mechanism == mechanism.name

    def test_direct_gaussian_rejects_pure_regime(self):
        workload = Workload.identity(4)
        assert not DirectMechanism("gaussian").supports(workload, PURE)
        assert DirectMechanism("laplace").supports(workload, PURE)

    def test_direct_mechanism_expected_error_is_noise_scale(self):
        workload = Workload.identity(4)
        assert DirectMechanism("gaussian").expected_error(
            workload, PRIVACY
        ) == pytest.approx(PRIVACY.gaussian_scale(1.0))

    def test_direct_mechanism_unknown_kind(self):
        with pytest.raises(PrivacyError):
            DirectMechanism("cauchy")


# ------------------------------------------------------------------- planner
class TestPlanner:
    def test_plan_picks_lowest_error_candidate(self):
        workload = all_range_queries_1d(16)
        planner = Planner(cache=None)
        plan = planner.plan(workload, PRIVACY)
        chosen = [c for c in plan.candidates if c.chosen]
        assert len(chosen) == 1
        finite = [c.expected_error for c in plan.candidates if np.isfinite(c.expected_error)]
        assert chosen[0].expected_error == min(finite)
        assert plan.expected_error(PRIVACY) <= expected_workload_error(
            workload, Strategy.identity(16), PRIVACY
        ) * (1 + 1e-9)

    def test_plan_error_rescales_across_privacy_levels(self):
        workload = all_range_queries_1d(8)
        planner = Planner(cache=None)
        plan = planner.plan(workload, PRIVACY)
        strict = PrivacyParams(epsilon=0.1, delta=1e-5)
        strategy = plan.mechanism.strategy
        assert plan.expected_error(strict) == pytest.approx(
            expected_workload_error(workload, strategy, strict)
        )

    def test_plan_regime_mismatch_raises(self):
        workload = Workload.identity(4)
        planner = Planner(cache=None)
        plan = planner.plan(workload, PRIVACY)
        with pytest.raises(PrivacyError):
            plan.expected_error(PURE)
        with pytest.raises(PrivacyError):
            plan.execute(workload, np.zeros(4), PURE)

    def test_profile_reports_structure(self):
        kron = Workload.kronecker([all_range_queries_1d(8), Workload.identity(4)])
        profile = analyze_workload(kron)
        assert profile.is_kronecker
        assert profile.cells == 32
        flat = analyze_workload(Workload.identity(8))
        assert not flat.is_kronecker

    def test_fingerprint_is_content_addressed(self):
        a = all_range_queries_1d(16)
        b = all_range_queries_1d(16)
        c = all_range_queries_1d(32)
        assert workload_fingerprint(a) == workload_fingerprint(b)
        assert workload_fingerprint(a) != workload_fingerprint(c)
        # Kronecker workloads key on factor content, not object identity.
        ka = Workload.kronecker([all_range_queries_1d(8), Workload.identity(4)])
        kb = Workload.kronecker([all_range_queries_1d(8), Workload.identity(4)])
        assert workload_fingerprint(ka) == workload_fingerprint(kb)

    def test_direct_mechanisms_only_without_estimate_requirement(self):
        workload = Workload.identity(8)
        with_estimate = Planner(cache=None).plan(workload, PRIVACY)
        assert all("direct" not in c.mechanism for c in with_estimate.candidates)
        relaxed = Planner(cache=None, require_estimate=False).plan(workload, PRIVACY)
        assert any("direct" in c.mechanism for c in relaxed.candidates)


class TestPlanCache:
    def test_warm_hit_skips_strategy_optimization(self):
        planner = Planner()
        cold = planner.plan(all_range_queries_1d(16), PRIVACY)
        assert planner.plans_built == 1
        warm = planner.plan(all_range_queries_1d(16), PRIVACY)
        assert planner.plans_built == 1  # the spy: no second optimization
        assert warm is cold
        assert planner.cache.stats["hits"] == 1

    def test_eigen_design_not_rerun_on_warm_hit(self, monkeypatch):
        import repro.engine.planner as planner_module

        calls = {"n": 0}
        real = planner_module.eigen_design

        def counting(workload, **kwargs):
            calls["n"] += 1
            return real(workload, **kwargs)

        monkeypatch.setattr(planner_module, "eigen_design", counting)
        planner = Planner()
        planner.plan(all_range_queries_1d(16), PRIVACY)
        planner.plan(all_range_queries_1d(16), PRIVACY)
        assert calls["n"] == 1

    def test_different_regimes_get_different_plans(self):
        planner = Planner()
        gaussian = planner.plan(Workload.identity(8), PRIVACY)
        laplace = planner.plan(Workload.identity(8), PURE)
        assert planner.plans_built == 2
        assert gaussian.regime == "gaussian" and laplace.regime == "laplace"

    def test_lru_eviction_and_stats(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.stats == {
            "entries": 2,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "warmed": 0,
        }
        assert len(cache) == 2 and "c" in cache
        cache.clear()
        assert len(cache) == 0

    def test_cache_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


# ------------------------------------------------------------------- session
class TestSession:
    def test_sql_end_to_end_with_plan_cache(self, schema, data):
        statements = [
            "SELECT COUNT(*) FROM students",
            "SELECT COUNT(*) FROM students GROUP BY gender",
            "SELECT COUNT(*) FROM students WHERE gpa BETWEEN 2.0 AND 3.5",
        ]
        planner = Planner()
        first = Session(
            PrivacyParams(1.0, 1e-4), schema=schema, data=data,
            planner=planner, random_state=0,
        )
        answer = first.ask(statements, epsilon=0.5)
        assert answer.spent == PrivacyParams(0.5, 5e-5)
        assert not answer.plan_cache_hit and planner.plans_built == 1
        assert len(answer.answers) == len(answer.labels) == 4
        # Consistency: every answer derives from the released estimate.
        workload, _ = workload_from_sql(schema, statements)
        np.testing.assert_allclose(answer.answers, workload.answer(answer.estimate))

        second = Session(
            PrivacyParams(1.0, 1e-4), schema=schema, data=data,
            planner=planner, random_state=1,
        )
        warm = second.ask(statements, epsilon=0.5)
        assert warm.plan_cache_hit
        assert planner.plans_built == 1  # structurally identical shape: no re-optimization

    def test_overlapping_query_served_free(self, schema, data):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema, data=data, random_state=0)
        paid = session.ask(
            ["SELECT COUNT(*) FROM s GROUP BY gender", "SELECT COUNT(*) FROM s"],
            epsilon=0.4,
        )
        spent_before = session.accountant.spent_epsilon
        free = session.ask("SELECT COUNT(*) FROM s WHERE gender = 'F'")
        assert free.served_from_release and free.spent is None
        assert session.accountant.spent_epsilon == spent_before
        # Served answers are consistent with the paid release's estimate.
        workload, _ = workload_from_sql(schema, ["SELECT COUNT(*) FROM s WHERE gender = 'F'"])
        np.testing.assert_allclose(free.answers, workload.answer(paid.estimate))

    def test_over_budget_request_refused_without_spending(self, schema, data):
        session = Session(PrivacyParams(0.5, 1e-4), schema=schema, data=data, random_state=0)
        with pytest.raises(BudgetExceededError):
            session.ask("SELECT COUNT(*) FROM s GROUP BY gpa", epsilon=0.7)
        assert session.accountant.spent_epsilon == 0.0
        assert session.accountant.spent_delta == 0.0
        # The session remains usable for affordable requests.
        ok = session.ask("SELECT COUNT(*) FROM s GROUP BY gpa", epsilon=0.5)
        assert ok.spent is not None

    def test_budget_exhaustion_over_requests(self, schema, data):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema, data=data, random_state=0)
        session.ask("SELECT COUNT(*) FROM s GROUP BY gpa", epsilon=0.6)
        with pytest.raises(BudgetExceededError):
            # Not answerable from the release (different marginal), too expensive.
            session.ask("SELECT COUNT(*) FROM s GROUP BY gender, gpa", epsilon=0.6)
        remaining = session.remaining
        assert remaining is not None and remaining.epsilon == pytest.approx(0.4)

    def test_raw_matrix_and_workload_requests(self, data):
        session = Session(PrivacyParams(1.0, 1e-4), data=data, random_state=0)
        from_matrix = session.ask(np.eye(8), epsilon=0.3)
        assert from_matrix.labels[0] == "query[0]"
        from_workload = session.ask(Workload.identity(8, name="cells"), epsilon=0.3)
        # The identity release determines every cell, so this is served free.
        assert from_workload.served_from_release

    def test_batched_requests_share_one_release(self, schema, data):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema, data=data, random_state=0)
        answers = session.ask_batch(
            [
                "SELECT COUNT(*) FROM s GROUP BY gender",
                np.ones((1, 8)),
                Workload.total(8, name="sum"),
            ],
            epsilon=0.5,
        )
        assert len(answers) == 3
        assert all(a.batch_size == 3 for a in answers)
        assert session.accountant.spent_epsilon == pytest.approx(0.5)
        assert len(session.accountant.history) == 1
        # One x_hat serves the whole batch: the two total queries agree, and
        # the gender marginal sums to the total.
        np.testing.assert_allclose(answers[1].answers, answers[2].answers)
        np.testing.assert_allclose(answers[0].answers.sum(), answers[2].answers[0])

    def test_batch_rejects_mismatched_cells(self, data):
        session = Session(PrivacyParams(1.0, 1e-4), data=data, random_state=0)
        with pytest.raises(WorkloadError):
            session.ask_batch([np.eye(8), np.eye(4)], epsilon=0.2)

    def test_session_requires_schema_for_sql(self, data):
        session = Session(PrivacyParams(1.0, 1e-4), data=data)
        with pytest.raises(ReproError):
            session.ask("SELECT COUNT(*) FROM s", epsilon=0.1)

    def test_session_requires_epsilon_or_default(self, schema, data):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema, data=data)
        with pytest.raises(ReproError):
            session.ask("SELECT COUNT(*) FROM s GROUP BY gpa")
        with_default = Session(
            PrivacyParams(1.0, 1e-4), schema=schema, data=data,
            default_epsilon=0.25, random_state=0,
        )
        answer = with_default.ask("SELECT COUNT(*) FROM s GROUP BY gpa")
        assert answer.spent.epsilon == 0.25

    def test_session_requires_data(self, schema):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema)
        with pytest.raises(ReproError):
            session.ask("SELECT COUNT(*) FROM s", epsilon=0.2)

    def test_relation_data_is_vectorised(self, schema):
        relation = sample_relation(schema, 500, random_state=3)
        session = Session(
            PrivacyParams(2.0, 1e-4), schema=schema, data=relation, random_state=0
        )
        answer = session.ask("SELECT COUNT(*) FROM s", epsilon=1.5, per_query=True)
        assert answer.answers.shape == (1,)
        assert abs(answer.answers[0] - 500) < 100  # noisy count near the truth
        assert answer.per_query_expected is not None

    def test_rejects_unintelligible_request(self, schema, data):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema, data=data)
        with pytest.raises(ReproError):
            session.ask({"not": "a request"}, epsilon=0.1)

    def test_pure_epsilon_session(self, schema, data):
        session = Session(PrivacyParams(1.0, 0.0), schema=schema, data=data, random_state=0)
        answer = session.ask("SELECT COUNT(*) FROM s GROUP BY gender", epsilon=0.8)
        assert answer.spent == PrivacyParams(0.8, 0.0)
        assert answer.plan.regime == "laplace"

    def test_per_request_data_bypasses_release_reuse(self, schema, data):
        # A release computed on the session's data must not answer a request
        # that brings its own data (and vice versa): cross-data reuse would
        # silently answer about the wrong dataset.
        session = Session(PrivacyParams(2.0, 1e-4), schema=schema, data=data, random_state=0)
        session.ask(np.eye(8), epsilon=0.5)  # full-rank release on session data
        other = np.zeros(8)
        paid = session.ask(np.ones((1, 8)), epsilon=0.5, data=other)
        assert not paid.served_from_release and paid.spent is not None
        assert abs(paid.answers[0]) < 50  # answers the zero vector, not `data`
        # ... and the foreign-data release was not recorded for reuse:
        on_session_data = session.ask(np.ones((1, 8)))
        assert on_session_data.served_from_release
        np.testing.assert_allclose(
            on_session_data.answers,
            np.ones((1, 8)) @ session.history[0].estimate,
        )

    def test_mechanism_instance_memo_is_bounded(self):
        mechanism = StrategyMechanism(Strategy.identity(4))
        x = np.zeros(4)
        workload = Workload.identity(4)
        for i in range(2 * StrategyMechanism.MAX_INSTANCES):
            mechanism.run(workload, x, PrivacyParams(0.1 + 0.01 * i, 1e-4), random_state=0)
        assert len(mechanism._instances) <= StrategyMechanism.MAX_INSTANCES

    def test_history_records_every_answer(self, schema, data):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema, data=data, random_state=0)
        session.ask("SELECT COUNT(*) FROM s GROUP BY gender", epsilon=0.3)
        session.ask("SELECT COUNT(*) FROM s WHERE gender = 'M'")
        assert len(session.history) == 2
        assert session.history[1].served_from_release
        assert session.releases == 1

    def test_failed_execution_refunds_the_reservation(self, data, monkeypatch):
        # The budget is reserved atomically *before* the mechanism runs; a
        # failure mid-execution (no noise drawn) must hand it back and leave
        # the session usable.
        from repro.engine.planner import Plan

        session = Session(PrivacyParams(1.0, 1e-4), data=data, random_state=0)

        def boom(self, *args, **kwargs):
            raise RuntimeError("mid-execution failure")

        monkeypatch.setattr(Plan, "execute", boom)
        with pytest.raises(RuntimeError):
            session.ask(np.eye(8), epsilon=0.4)
        assert session.accountant.spent_epsilon == 0.0
        assert session.accountant.history == []
        monkeypatch.undo()
        ok = session.ask(np.eye(8), epsilon=0.4)
        assert ok.spent is not None


# --------------------------------------------------- batch / union identity
class TestSingleRequestBatch:
    def test_union_of_one_preserves_identity_and_fingerprint(self):
        lazy = Workload.kronecker([Workload.identity(16)] * 3)  # 4096 cells, lazy
        assert Workload.union([lazy]) is lazy
        renamed = Workload.union([lazy], name="batch")
        assert renamed.name == "batch"
        assert renamed._kron_factors is lazy._kron_factors
        assert workload_fingerprint(renamed) == workload_fingerprint(lazy)

    def test_single_request_batch_hits_warm_plan_cache(self):
        # The same Kronecker shape, once asked plainly and once as a batch
        # of one: the batch must not wrap the request in a union (which
        # would change the fingerprint from kron-keyed to matrix-keyed) and
        # must hit the warm plan.
        def shape():
            return Workload.kronecker([Workload.identity(8), Workload.identity(4)])

        planner = Planner()
        data = np.arange(32, dtype=float)
        first = Session(
            PrivacyParams(1.0, 1e-4), data=data, planner=planner, random_state=0
        )
        first.ask(shape(), epsilon=0.3)
        assert planner.plans_built == 1
        second = Session(
            PrivacyParams(1.0, 1e-4), data=data, planner=planner, random_state=1
        )
        [answer] = second.ask_batch([shape()], epsilon=0.3)
        assert answer.plan_cache_hit
        assert planner.plans_built == 1  # no re-optimization for the warm shape
        assert answer.batch_size == 1
        assert len(second.history) == 1

    def test_single_sql_batch_keeps_labels(self, schema, data):
        session = Session(PrivacyParams(1.0, 1e-4), schema=schema, data=data, random_state=0)
        [answer] = session.ask_batch(["SELECT COUNT(*) FROM s GROUP BY gender"], epsilon=0.4)
        assert answer.labels == ["gender = 'M'", "gender = 'F'"]
        assert answer.spent == PrivacyParams(0.4, 4e-5)
        assert session.accountant.history[0][0] == "sql-workload"


# ------------------------------------------------- reuse probe at scale
class TestReuseProbeNeverDensifies:
    def _rank_deficient_release(self):
        from repro.engine.session import _Release
        from repro.utils.operators import EigenDiagOperator, KroneckerEigenbasis

        basis = KroneckerEigenbasis.from_gram_factors([np.eye(16)] * 3)
        spectrum = np.ones((16, 16, 16))
        spectrum[:, :, 15] = 0.0  # dead coordinates: last factor's last cell
        strategy = Strategy.from_gram_operator(
            EigenDiagOperator(basis, spectrum.ravel()), name="rank-deficient"
        )
        return _Release(
            strategy=strategy,
            estimate=np.zeros(4096),
            params=PRIVACY,
            label="release",
        )

    def test_no_densify_at_n4096(self, monkeypatch):
        # The reuse probe of a rank-deficient release must decide support
        # through the structured path: every densification entry point is
        # patched to fail, so the probe provably never builds an n x n array
        # (16.7M entries at n = 4096) just to decide reuse.
        from repro.utils import operators as ops

        def forbidden(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("dense materialisation in the reuse probe")

        monkeypatch.setattr(ops.KroneckerOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.EigenDiagOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.SumOperator, "to_dense", forbidden)
        monkeypatch.setattr(ops.StructuredGramMixin, "_densify_structured_gram", forbidden)

        session = Session(PrivacyParams(1.0, 1e-4), data=np.zeros(4096))
        session._releases.append(self._rank_deficient_release())

        # Supported: no workload mass on the dead coordinates -> served free.
        last = np.eye(16)
        last[15, 15] = 0.0
        supported = Workload.kronecker(
            [Workload.identity(16), Workload.identity(16), Workload(last)]
        )
        served = session._serve_from_release(supported)
        assert served is not None and served.served_from_release

        # Unsupported: mass on the dead coordinates -> correctly refused.
        unsupported = Workload.kronecker([Workload.identity(16)] * 3)
        assert session._serve_from_release(unsupported) is None

        # No structured match (a union Gram): the probe treats the release
        # as unsupported instead of densifying to find out.
        union = Workload.union([supported, unsupported])
        assert session._serve_from_release(union) is None

    def test_structured_probe_agrees_with_dense_oracle_at_small_n(self):
        # Same construction at n = 27, where the dense answer is affordable:
        # the structured verdicts must match Strategy.supports on the dense
        # Gram matrices.
        from repro.utils.operators import EigenDiagOperator, KroneckerEigenbasis

        basis = KroneckerEigenbasis.from_gram_factors([np.eye(3)] * 3)
        spectrum = np.ones((3, 3, 3))
        spectrum[:, :, 2] = 0.0
        strategy = Strategy.from_gram_operator(EigenDiagOperator(basis, spectrum.ravel()))
        last = np.eye(3)
        last[2, 2] = 0.0
        supported = Workload.kronecker(
            [Workload.identity(3), Workload.identity(3), Workload(last)]
        )
        unsupported = Workload.kronecker([Workload.identity(3)] * 3)
        for workload in (supported, unsupported):
            assert strategy.supports_workload(workload) == strategy.supports(
                workload.gram
            )
