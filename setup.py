"""Setup shim for legacy editable installs.

The environment used for offline reproduction lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) fall back to this legacy
path (``--no-use-pep517``).  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
