"""A2 — ablation: approximation-ratio certification of the eigen design.

Sec. 5.1 of the paper reports that the eigen design's error never exceeds 1.3
times the optimal error and often matches the lower bound.  This benchmark
certifies that claim directly at small domain sizes: for each workload it
computes the eigen design, the direct Gram-matrix reference solver (our
OptStrat(W) stand-in), the Thm. 2 singular-value lower bound, and the Thm. 3
worst-case ratio, and checks the measured ratios against the paper's claims.
"""

from __future__ import annotations

import pytest

from repro import (
    approximation_ratio_bound,
    eigen_design,
    expected_workload_error,
    minimum_error_bound,
)
from repro.evaluation import format_table
from repro.optimize import optimal_gram_strategy
from repro.workloads import (
    all_range_queries_1d,
    cdf_workload,
    example_workload,
    kway_marginals,
    kway_range_marginals,
    permuted_workload,
    random_predicate_queries,
)

from _util import PAPER_SCALE, emit

CELLS = 128 if PAPER_SCALE else 64

WORKLOADS = {
    "fig1-example": lambda: example_workload(),
    "1d-range": lambda: all_range_queries_1d(CELLS),
    "1d-range-permuted": lambda: permuted_workload(all_range_queries_1d(CELLS), random_state=0),
    "2way-marginal": lambda: kway_marginals([4, 4, 4], 2),
    "1way-range-marginal": lambda: kway_range_marginals([8, 8], 1),
    "predicate": lambda: random_predicate_queries(CELLS, 2 * CELLS, random_state=0),
    "1d-cdf": lambda: cdf_workload(CELLS),
}


def test_approximation_ratio_certification(benchmark, privacy):
    def run():
        rows = []
        for label, factory in WORKLOADS.items():
            workload = factory()
            eigen = eigen_design(workload).strategy
            reference = optimal_gram_strategy(workload).strategy
            eigen_error = expected_workload_error(workload, eigen, privacy)
            reference_error = expected_workload_error(workload, reference, privacy)
            bound = minimum_error_bound(workload, privacy)
            rows.append(
                {
                    "workload": label,
                    "eigen error": eigen_error,
                    "reference error": reference_error,
                    "lower bound": bound,
                    "ratio to reference": eigen_error / reference_error,
                    "ratio to bound": eigen_error / bound,
                    "thm3 worst case": approximation_ratio_bound(workload),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "approximation_ratio",
        format_table(
            rows,
            precision=3,
            title="A2: eigen-design approximation ratios (paper claim: never above 1.3)",
        ),
    )
    for row in rows:
        # Paper, Sec. 5.1: "We never witness an approximation rate greater
        # than 1.3 times the optimal absolute error."
        assert row["ratio to bound"] <= 1.3
        # The measured ratio never exceeds the Thm. 3 worst-case guarantee.
        assert row["ratio to bound"] <= row["thm3 worst case"] + 1e-6
        # The reference solver never does meaningfully better than the bound
        # allows, and the eigen design stays within 10% of the reference
        # except on the CDF workload (the paper's own exception).
        if row["workload"] != "1d-cdf":
            assert row["ratio to reference"] == pytest.approx(1.0, abs=0.1)
