"""E5 — Fig. 3(d): relative error on marginal workloads over the two datasets.

Average relative error of Fourier, DataCube and the Eigen design on 2-way
marginal and random marginal workloads, on the census-like and adult-like
datasets, for epsilon in {0.1, 0.5, 1, 2.5}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PrivacyParams, Workload, eigen_design
from repro.datasets import adult_like, census_like
from repro.evaluation import format_table, relative_error
from repro.strategies import datacube_strategy, fourier_strategy
from repro.workloads import kway_marginals, marginal_attribute_sets, marginal_workload

from _util import PAPER_SCALE, emit

EPSILONS = (0.1, 0.5, 1.0, 2.5)
TRIALS = 5 if PAPER_SCALE else 2
CENSUS_TOTAL = 15_000_000 if PAPER_SCALE else 1_000_000
RANDOM_MARGINAL_COUNT = 12


def _dataset(name):
    if name == "census":
        return census_like(total=CENSUS_TOTAL, random_state=0)
    return adult_like(random_state=0)


def _workload_and_sets(domain, kind):
    if kind == "2-way":
        return kway_marginals(domain, 2), marginal_attribute_sets(domain, 2)
    rng = np.random.default_rng(1)
    sets = []
    for _ in range(RANDOM_MARGINAL_COUNT):
        order = int(rng.integers(1, domain.dimensions + 1))
        sets.append(tuple(sorted(rng.choice(domain.dimensions, size=order, replace=False).tolist())))
    workload = Workload.union(
        [marginal_workload(domain, list(attrs)) for attrs in sets], name="random-marginals"
    )
    return workload, sets


@pytest.mark.parametrize("dataset_name", ["census", "adult"])
@pytest.mark.parametrize("kind", ["2-way", "random"])
def test_fig3d_relative_error_marginals(benchmark, dataset_name, kind):
    dataset = _dataset(dataset_name)
    workload, marginal_sets = _workload_and_sets(dataset.domain, kind)
    strategies = {
        "fourier": fourier_strategy(dataset.domain, marginal_sets),
        "datacube": datacube_strategy(dataset.domain, marginal_sets),
        "eigen-design": eigen_design(workload.normalize_rows()).strategy,
    }

    def run():
        rows = []
        for epsilon in EPSILONS:
            privacy = PrivacyParams(epsilon=epsilon, delta=1e-4)
            for name, strategy in strategies.items():
                result = relative_error(
                    workload, strategy, dataset, privacy, trials=TRIALS, random_state=5
                )
                rows.append(
                    {
                        "dataset": dataset.name,
                        "workload": kind,
                        "epsilon": epsilon,
                        "strategy": name,
                        "mean relative error": result.mean_relative_error,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"fig3d_{dataset_name}_{kind}",
        format_table(
            rows,
            precision=4,
            title=f"E5 (Fig. 3d): relative error on {kind} marginals, {dataset.name}",
        ),
    )
    # Paper shape: the eigen design is at least as accurate as the best of
    # Fourier / DataCube (improvements of 1.1x-2.7x are reported).
    for epsilon in EPSILONS:
        subset = {row["strategy"]: row["mean relative error"] for row in rows if row["epsilon"] == epsilon}
        assert subset["eigen-design"] <= min(subset["fourier"], subset["datacube"]) * 1.1
