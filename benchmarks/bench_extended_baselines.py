"""A3 — ablation: extended baselines (HB, weighted hierarchy, spatial trees).

The paper compares against the baselines that existed at publication time
(identity, wavelet, hierarchical, Fourier, DataCube).  This ablation adds the
follow-on baselines implemented in this library — branching-factor-tuned
hierarchies (HB), the Program-1-reweighted hierarchy, and quadtree/k-d spatial
decompositions — and verifies that the adaptive eigen design still wins on
range workloads, which is the expected outcome and the reason the paper's
conclusions survive those later baselines.
"""

from __future__ import annotations

import pytest

from repro import eigen_design, expected_workload_error, minimum_error_bound
from repro.evaluation import format_table
from repro.strategies import (
    hb_strategy,
    hierarchical_strategy,
    kd_tree_strategy,
    quadtree_strategy,
    wavelet_strategy,
    weighted_hierarchical_strategy,
)
from repro.workloads import all_range_queries, all_range_queries_1d, random_range_queries

from _util import PAPER_SCALE, emit

CELLS_1D = 1024 if PAPER_SCALE else 256
SHAPE_2D = [32, 32] if PAPER_SCALE else [16, 16]


@pytest.mark.parametrize("case", ["1d-all-range", "1d-random-range", "2d-all-range"])
def test_extended_baselines(benchmark, privacy, case):
    if case == "1d-all-range":
        workload = all_range_queries_1d(CELLS_1D)
        shape = [CELLS_1D]
    elif case == "1d-random-range":
        workload = random_range_queries([CELLS_1D], CELLS_1D, random_state=0)
        shape = [CELLS_1D]
    else:
        workload = all_range_queries(SHAPE_2D)
        shape = SHAPE_2D

    def run():
        strategies = {
            "hierarchical (binary)": hierarchical_strategy(shape),
            "hb (tuned fan-out)": hb_strategy(shape, workload),
            "wavelet": wavelet_strategy(shape),
            "weighted hierarchy": weighted_hierarchical_strategy(workload),
            "eigen design": eigen_design(workload).strategy,
        }
        if len(shape) > 1:
            strategies["quadtree"] = quadtree_strategy(shape)
            strategies["k-d tree"] = kd_tree_strategy(shape)
        return {
            label: expected_workload_error(workload, strategy, privacy)
            for label, strategy in strategies.items()
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = minimum_error_bound(workload, privacy)
    rows = [
        {"strategy": label, "error": error, "ratio_to_bound": error / bound}
        for label, error in sorted(errors.items(), key=lambda item: item[1])
    ]
    rows.append({"strategy": "lower bound", "error": bound, "ratio_to_bound": 1.0})
    emit(
        f"extended_baselines_{case}",
        format_table(rows, precision=3, title=f"A3 ({case}): extended baselines vs eigen design"),
    )

    eigen_error = errors["eigen design"]
    for label, error in errors.items():
        if label == "eigen design":
            continue
        # The adaptive design is never beaten by any of the fixed baselines.
        assert eigen_error <= error * 1.001, (label, error, eigen_error)
