"""E10 — Sec. 3.5: query weighting under pure epsilon-differential privacy (L1).

The paper reports that, under epsilon-DP, optimally re-weighting an existing
basis improves the Wavelet strategy by ~1.1x on all range queries and ~1.5x on
random range queries, and the Fourier strategy by ~1.6x on low-order
marginals.  This benchmark reproduces those three comparisons using the L1
weighting problem (power-2 objective) on the corresponding design bases.

Error model: under epsilon-DP with Laplace noise the expected total squared
error of strategy A is proportional to ``||A||_1^2 * trace(W^T W (A^T A)^-1)``,
which is the quantity compared here (the constant does not affect ratios).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Strategy, Workload
from repro.evaluation import format_table
from repro.optimize import solve_l1_weights
from repro.strategies import fourier_strategy, wavelet_strategy
from repro.utils.linalg import trace_ratio
from repro.workloads import all_range_queries_1d, kway_marginals, random_range_queries
from repro.core.query_weighting import design_costs

from _util import PAPER_SCALE, emit

RANGE_CELLS = 1024 if PAPER_SCALE else 128
MARGINAL_DIMS = [16, 16, 8] if PAPER_SCALE else [8, 8, 4]


def _l1_error(workload: Workload, strategy_matrix: np.ndarray) -> float:
    """Relative epsilon-DP error measure: L1 sensitivity times sqrt(trace term)."""
    strategy = Strategy(strategy_matrix)
    core = trace_ratio(workload.gram, strategy.gram)
    return strategy.sensitivity_l1 * float(np.sqrt(core / workload.query_count))


def _reweighted(workload: Workload, design: np.ndarray) -> np.ndarray:
    costs = design_costs(workload, design)
    solution = solve_l1_weights(design, costs)
    weights = solution.weights
    keep = weights > 1e-12 * weights.max()
    return weights[keep, None] * design[keep]


def test_l1_basis_reweighting(benchmark):
    cases = {
        "all range / wavelet basis": (
            all_range_queries_1d(RANGE_CELLS),
            wavelet_strategy(RANGE_CELLS).matrix,
            1.1,
        ),
        "random range / wavelet basis": (
            random_range_queries([RANGE_CELLS], 2 * RANGE_CELLS, random_state=0),
            wavelet_strategy(RANGE_CELLS).matrix,
            1.5,
        ),
        "2-way marginals / fourier basis": (
            kway_marginals(MARGINAL_DIMS, 2),
            fourier_strategy(MARGINAL_DIMS, 2).matrix,
            1.6,
        ),
    }

    def run():
        rows = []
        for label, (workload, design, paper_factor) in cases.items():
            plain = _l1_error(workload, design)
            reweighted = _l1_error(workload, _reweighted(workload, design))
            rows.append(
                {
                    "case": label,
                    "plain basis error": plain,
                    "reweighted error": reweighted,
                    "improvement": plain / reweighted,
                    "paper improvement": paper_factor,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "l1_weighting",
        format_table(
            rows,
            precision=3,
            title="E10 (Sec. 3.5): epsilon-DP improvement from optimally re-weighting a fixed basis",
        ),
    )
    for row in rows:
        # Re-weighting can only help; the paper reports factors of 1.1-1.6.
        assert row["improvement"] >= 1.0 - 1e-6
