"""E2 — Fig. 3(a): absolute workload error on range workloads.

The paper fixes 2048 cells and varies the domain shape ([2048], [64x32],
[16x16x8], [8x8x8x4], [2^11]), comparing Hierarchical, Wavelet, the Eigen
design and the singular-value lower bound, for (i) all range queries and
(ii) random range queries.  The default configuration here uses 256 cells so
the whole benchmark suite stays fast; set ``REPRO_PAPER_SCALE=1`` for the
2048-cell shapes.
"""

from __future__ import annotations

import pytest

from repro import eigen_design, expected_workload_error, minimum_error_bound
from repro.evaluation import format_table
from repro.strategies import hierarchical_strategy, wavelet_strategy
from repro.workloads import all_range_queries, random_range_queries

from _util import PAPER_SCALE, emit

SHAPES = (
    [[2048], [64, 32], [16, 16, 8], [8, 8, 8, 4], [2] * 11]
    if PAPER_SCALE
    else [[256], [16, 16], [8, 8, 4], [4, 4, 4, 4], [2] * 8]
)


def _collect(workload_factory, privacy):
    rows = []
    for dims in SHAPES:
        workload = workload_factory(dims)
        strategies = {
            "hierarchical": hierarchical_strategy(dims),
            "wavelet": wavelet_strategy(dims),
            "eigen-design": eigen_design(workload).strategy,
        }
        bound = minimum_error_bound(workload, privacy)
        errors = {
            name: expected_workload_error(workload, strategy, privacy)
            for name, strategy in strategies.items()
        }
        best_competitor = min(errors["hierarchical"], errors["wavelet"])
        rows.append(
            {
                "shape": "x".join(str(d) for d in dims),
                "hierarchical": errors["hierarchical"],
                "wavelet": errors["wavelet"],
                "eigen": errors["eigen-design"],
                "lower bound": bound,
                "best/eigen": best_competitor / errors["eigen-design"],
                "eigen/bound": errors["eigen-design"] / bound,
            }
        )
    return rows


@pytest.mark.parametrize("kind", ["all-range", "random-range"])
def test_fig3a_range_workloads(benchmark, privacy, kind):
    if kind == "all-range":
        factory = all_range_queries
    else:
        factory = lambda dims: random_range_queries(dims, 1000, random_state=0)  # noqa: E731

    rows = benchmark.pedantic(lambda: _collect(factory, privacy), rounds=1, iterations=1)
    emit(
        f"fig3a_{kind}",
        format_table(
            rows,
            precision=3,
            title=(
                f"E2 (Fig. 3a, {kind}): workload error by domain shape "
                f"({'paper scale' if PAPER_SCALE else 'reduced scale'})"
            ),
        ),
    )
    for row in rows:
        # Paper: eigen design improves on the best competitor by 1.2x-2.1x and
        # stays within 1.3x of the lower bound.
        assert row["best/eigen"] > 1.0
        assert row["eigen/bound"] < 1.35
