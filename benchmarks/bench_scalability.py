"""A4 — ablation: eigen-design cost and quality versus domain size.

The paper's complexity claim is that strategy selection costs O(n^4) via the
eigen decomposition plus the weighting program (Sec. 3.2/4.1), and that the
reductions of Sec. 4.2 tame the constant.  This ablation sweeps the domain
size for the all-1-D-range workload, recording the wall-clock time of the
full eigen design and its ratio-to-bound, so regressions in either the solver
or the numerical quality show up as a change in the series' shape.

A second sweep exercises the *factorized Kronecker fast path* on
multi-dimensional range workloads: the eigen design runs entirely through
structured operators (k tiny factor ``eigh`` calls, a matrix-free weighting
program, an operator-backed strategy Gram), reaching product domains far
beyond what the dense path can touch — the dense sweep above tops out around
``n = 2048`` while the factorized sweep runs an order of magnitude larger at
comparable wall-clock.
"""

from __future__ import annotations

import time

from repro import eigen_design, expected_workload_error, minimum_error_bound
from repro.evaluation import format_table, line_chart
from repro.workloads import all_range_queries, all_range_queries_1d

from _util import PAPER_SCALE, emit

SIZES = (64, 128, 256, 512, 1024, 2048) if PAPER_SCALE else (32, 64, 128, 256)

#: Product-domain shapes for the factorized sweep.  Every shape beyond the
#: first has n x n above the structure-preference budget, so the factorized
#: path is the default there (a dense Gram remains possible up to the hard
#: cap, which is what the dense timings in bench_kron_fastpath.py measure).
KRON_SHAPES = (
    ((16, 16, 8), (16, 16, 16), (32, 32, 8), (32, 32, 16), (32, 32, 32))
    if PAPER_SCALE
    else ((16, 16, 4), (16, 16, 16), (32, 32, 8))
)


def test_scalability_sweep(benchmark, privacy):
    def run():
        rows = []
        for cells in SIZES:
            workload = all_range_queries_1d(cells)
            start = time.perf_counter()
            design = eigen_design(workload)
            seconds = time.perf_counter() - start
            error = expected_workload_error(workload, design.strategy, privacy)
            bound = minimum_error_bound(workload, privacy)
            rows.append(
                {
                    "cells": cells,
                    "seconds": seconds,
                    "error": error,
                    "ratio_to_bound": error / bound,
                    "solver_iterations": design.solution.iterations,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = line_chart(
        [row["cells"] for row in rows],
        {"seconds": [row["seconds"] for row in rows]},
        log_y=True,
        title="Eigen-design wall-clock time vs domain size (log scale)",
    )
    emit(
        "scalability",
        format_table(
            rows,
            precision=4,
            title="A4: eigen-design cost and quality vs domain size (all 1-D ranges)",
        )
        + "\n\n"
        + chart,
    )
    for row in rows:
        # Quality does not degrade with size: the ratio to the bound stays
        # within the paper's 1.3 envelope across the sweep.
        assert row["ratio_to_bound"] <= 1.3


def test_kron_fastpath_sweep(benchmark, privacy):
    """Eigen design on product domains the dense path cannot reach."""

    def run():
        rows = []
        for shape in KRON_SHAPES:
            workload = all_range_queries(shape)
            start = time.perf_counter()
            # complete=False keeps the strategy Gram diagonal in the
            # eigenbasis so the error trace stays factorized at any size.
            design = eigen_design(workload, complete=False, factorized=True)
            seconds = time.perf_counter() - start
            error = expected_workload_error(workload, design.strategy, privacy)
            bound = minimum_error_bound(workload, privacy)
            rows.append(
                {
                    "shape": "x".join(map(str, shape)),
                    "cells": workload.column_count,
                    "seconds": seconds,
                    "error": error,
                    "ratio_to_bound": error / bound,
                    "method": design.method,
                    "solver_iterations": design.solution.iterations,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = line_chart(
        [row["cells"] for row in rows],
        {"seconds": [row["seconds"] for row in rows]},
        log_y=True,
        title="Factorized eigen-design wall-clock time vs product-domain size",
    )
    emit(
        "kron_scalability",
        format_table(
            rows,
            precision=4,
            title="A4b: factorized eigen design on multi-dimensional range workloads",
        )
        + "\n\n"
        + chart,
    )
    for row in rows:
        assert row["method"] == "eigen-design-factorized"
        # The factorized path keeps the same quality envelope as the dense
        # sweep above (skipping the completion rows can only make the
        # reported error slightly pessimistic, never better than optimal).
        assert row["ratio_to_bound"] <= 1.3
