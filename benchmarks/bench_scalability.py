"""A4 — ablation: eigen-design cost and quality versus domain size.

The paper's complexity claim is that strategy selection costs O(n^4) via the
eigen decomposition plus the weighting program (Sec. 3.2/4.1), and that the
reductions of Sec. 4.2 tame the constant.  This ablation sweeps the domain
size for the all-1-D-range workload, recording the wall-clock time of the
full eigen design and its ratio-to-bound, so regressions in either the solver
or the numerical quality show up as a change in the series' shape.
"""

from __future__ import annotations

import time

from repro import eigen_design, expected_workload_error, minimum_error_bound
from repro.evaluation import format_table, line_chart
from repro.workloads import all_range_queries_1d

from _util import PAPER_SCALE, emit

SIZES = (64, 128, 256, 512, 1024, 2048) if PAPER_SCALE else (32, 64, 128, 256)


def test_scalability_sweep(benchmark, privacy):
    def run():
        rows = []
        for cells in SIZES:
            workload = all_range_queries_1d(cells)
            start = time.perf_counter()
            design = eigen_design(workload)
            seconds = time.perf_counter() - start
            error = expected_workload_error(workload, design.strategy, privacy)
            bound = minimum_error_bound(workload, privacy)
            rows.append(
                {
                    "cells": cells,
                    "seconds": seconds,
                    "error": error,
                    "ratio_to_bound": error / bound,
                    "solver_iterations": design.solution.iterations,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = line_chart(
        [row["cells"] for row in rows],
        {"seconds": [row["seconds"] for row in rows]},
        log_y=True,
        title="Eigen-design wall-clock time vs domain size (log scale)",
    )
    emit(
        "scalability",
        format_table(
            rows,
            precision=4,
            title="A4: eigen-design cost and quality vs domain size (all 1-D ranges)",
        )
        + "\n\n"
        + chart,
    )
    for row in rows:
        # Quality does not degrade with size: the ratio to the bound stays
        # within the paper's 1.3 envelope across the sweep.
        assert row["ratio_to_bound"] <= 1.3
