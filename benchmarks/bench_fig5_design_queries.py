"""E8 — Fig. 5: the choice of design queries (eigen vs wavelet vs Fourier).

The paper runs Program 1 with three different design sets — the eigen-queries,
the wavelet matrix and the Fourier matrix — on 1-D range queries and 2-D
marginals, plus the same workloads with permuted cell conditions.  Fixed
design sets roughly match the eigen-queries on the structured workloads but
degrade by several times under permutation; the eigen-queries are unaffected.
"""

from __future__ import annotations

import pytest

from repro import eigen_design, expected_workload_error, minimum_error_bound, weighted_design_strategy
from repro.domain import Domain
from repro.evaluation import format_table
from repro.strategies import wavelet_strategy
from repro.strategies.fourier import full_fourier_matrix
from repro.workloads import all_range_queries_1d, kway_marginals, permuted_workload

from _util import PAPER_SCALE, emit

RANGE_CELLS = 2048 if PAPER_SCALE else 256
MARGINAL_DIMS = [64, 32] if PAPER_SCALE else [16, 16]


def _errors_for(workload, design_sets, privacy):
    errors = {}
    for name, design in design_sets.items():
        if design is None:
            strategy = eigen_design(workload).strategy
        else:
            strategy = weighted_design_strategy(workload, design).strategy
        errors[name] = expected_workload_error(workload, strategy, privacy)
    errors["lower bound"] = minimum_error_bound(workload, privacy)
    return errors


def test_fig5_design_query_choice(benchmark, privacy):
    range_workload = all_range_queries_1d(RANGE_CELLS)
    marginal_workload = kway_marginals(MARGINAL_DIMS, 2)
    cases = {
        f"1D range [{RANGE_CELLS}]": (
            range_workload,
            {
                "wavelet design": wavelet_strategy(RANGE_CELLS).matrix,
                "fourier design": full_fourier_matrix([RANGE_CELLS]),
                "eigen design": None,
            },
        ),
        f"1D range [{RANGE_CELLS}] permuted": (
            permuted_workload(range_workload, random_state=4),
            {
                "wavelet design": wavelet_strategy(RANGE_CELLS).matrix,
                "fourier design": full_fourier_matrix([RANGE_CELLS]),
                "eigen design": None,
            },
        ),
        f"2D marginal {MARGINAL_DIMS}": (
            marginal_workload,
            {
                "wavelet design": wavelet_strategy(MARGINAL_DIMS).matrix,
                "fourier design": full_fourier_matrix(Domain(MARGINAL_DIMS)),
                "eigen design": None,
            },
        ),
        f"2D marginal {MARGINAL_DIMS} permuted": (
            permuted_workload(marginal_workload, random_state=4),
            {
                "wavelet design": wavelet_strategy(MARGINAL_DIMS).matrix,
                "fourier design": full_fourier_matrix(Domain(MARGINAL_DIMS)),
                "eigen design": None,
            },
        ),
    }

    def run():
        rows = []
        for label, (workload, design_sets) in cases.items():
            errors = _errors_for(workload, design_sets, privacy)
            rows.append({"workload": label, **errors})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig5_design_queries",
        format_table(rows, precision=3, title="E8 (Fig. 5): comparison of design-query sets"),
    )

    by_label = {row["workload"]: row for row in rows}
    structured = by_label[f"1D range [{RANGE_CELLS}]"]
    permuted = by_label[f"1D range [{RANGE_CELLS}] permuted"]
    # Paper: on the structured workload the fixed designs are within ~20% of
    # the eigen design; under permutation they are several times worse while
    # the eigen design's error is unchanged.
    assert structured["wavelet design"] <= structured["eigen design"] * 1.35
    assert permuted["wavelet design"] > permuted["eigen design"] * 2.0
    assert permuted["eigen design"] == pytest.approx(structured["eigen design"], rel=1e-3)
