"""E1 — Example 4 / Fig. 2: strategies for the paper's running example workload.

The paper reports RMSE 47.78 (workload as strategy), 45.36 (identity), 34.62
(wavelet), 29.79 (eigen design) and a lower bound of 29.18 for the 8-query
gender x gpa workload.  Our noise constant differs by a fixed factor, so the
reproduced quantities are the ratios between strategies, which this benchmark
prints alongside the paper's.
"""

from __future__ import annotations

from repro import eigen_design, expected_workload_error, minimum_error_bound
from repro.evaluation import format_table
from repro.strategies import identity_strategy, wavelet_strategy, workload_strategy
from repro.workloads import example_workload

from _util import emit

PAPER_ERRORS = {"identity": 45.36, "wavelet": 34.62, "eigen-design": 29.79, "lower-bound": 29.18}


def test_example_workload_strategies(benchmark, privacy):
    workload = example_workload()

    design = benchmark(lambda: eigen_design(workload))

    errors = {
        "identity": expected_workload_error(workload, identity_strategy(8), privacy),
        "wavelet": expected_workload_error(workload, wavelet_strategy(8), privacy),
        "eigen-design": expected_workload_error(workload, design.strategy, privacy),
        "lower-bound": minimum_error_bound(workload, privacy),
    }
    workload_as_strategy = expected_workload_error(workload, workload_strategy(workload), privacy)

    rows = []
    for name, error in errors.items():
        rows.append(
            {
                "strategy": name,
                "measured error": error,
                "measured / bound": error / errors["lower-bound"],
                "paper error": PAPER_ERRORS[name],
                "paper / bound": PAPER_ERRORS[name] / PAPER_ERRORS["lower-bound"],
            }
        )
    rows.append(
        {
            "strategy": "workload-as-strategy",
            "measured error": workload_as_strategy,
            "measured / bound": workload_as_strategy / errors["lower-bound"],
            "paper error": 47.78,
            "paper / bound": 47.78 / PAPER_ERRORS["lower-bound"],
        }
    )
    emit(
        "example_workload",
        format_table(rows, precision=3, title="E1 (Fig. 2 / Example 4): strategies for the Fig. 1 workload"),
    )

    assert errors["eigen-design"] < errors["wavelet"] < errors["identity"]
    assert errors["eigen-design"] / errors["lower-bound"] < 1.05
