"""Benchmark-suite fixtures."""

from __future__ import annotations

import pytest

from repro import PrivacyParams


@pytest.fixture(scope="session")
def privacy() -> PrivacyParams:
    """The paper's experimental privacy setting (epsilon=0.5, delta=1e-4)."""
    return PrivacyParams(epsilon=0.5, delta=1e-4)
