"""E9 — Table 1: the evaluation datasets (synthetic stand-ins).

Reports the dimensions and tuple counts of the two datasets used in the
relative-error experiments, matching the paper's Table 1 (US Census:
8 x 16 x 16, 15M tuples; Adult: 8 x 8 x 16 x 2, 33K tuples).  The generation
itself is benchmarked (it is the only data-dependent setup cost).
"""

from __future__ import annotations

from repro.datasets import adult_like, census_like
from repro.evaluation import format_table

from _util import PAPER_SCALE, emit

CENSUS_TOTAL = 15_000_000 if PAPER_SCALE else 1_000_000


def test_table1_dataset_summaries(benchmark):
    def build():
        return [
            census_like(total=CENSUS_TOTAL, random_state=0),
            adult_like(random_state=0),
        ]

    datasets = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for dataset, paper_dim, paper_tuples in zip(
        datasets, ["8x16x16", "8x8x16x2"], ["15M", "33K"]
    ):
        summary = dataset.describe()
        summary["paper dimension"] = paper_dim
        summary["paper tuples"] = paper_tuples
        rows.append(summary)
    emit(
        "table1_datasets",
        format_table(
            rows,
            columns=[
                "name",
                "dimension",
                "cells",
                "tuples",
                "nonzero_cells",
                "paper dimension",
                "paper tuples",
            ],
            precision=0,
            title="E9 (Table 1): evaluation datasets (synthetic stand-ins, see DESIGN.md)",
        ),
    )
    assert datasets[0].shape == (8, 16, 16)
    assert datasets[1].shape == (8, 8, 16, 2)
