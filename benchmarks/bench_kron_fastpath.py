"""Micro-benchmark: dense vs factorized Kronecker eigen-decomposition.

Tracks the perf trajectory of the structured-operator fast path across PRs.
For a k-dimensional product workload the dense path builds the ``n x n``
Gram with ``np.kron`` and calls one ``O(n^3)`` ``eigh``; the factorized path
eigendecomposes each tiny factor Gram and combines spectra by outer product.

Emits ``BENCH_kron_fastpath.json`` at the repository root with one row per
domain size (dense and factorized wall-clock, speedup, max eigenvalue
deviation), so regressions in either speed or numerical agreement are visible
in version control.

Run with:  python benchmarks/bench_kron_fastpath.py
(or via pytest; no plugin fixtures are required).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.utils.operators import KroneckerEigenbasis
from repro.workloads.gram import all_range_gram

#: Shapes benchmarked on both paths (the dense oracle stays feasible here).
DENSE_SHAPES = ((8, 8, 8), (16, 16, 4), (16, 16, 8), (16, 16, 16))

#: Shapes only the factorized path can reach (dense would need >= 2 GiB).
FACTORIZED_ONLY_SHAPES = ((32, 32, 16), (32, 32, 32), (64, 64, 32))

#: The acceptance bar tracked across PRs.
TARGET_SPEEDUP = 10.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kron_fastpath.json"


def _factor_grams(shape: tuple[int, ...]) -> list[np.ndarray]:
    """Per-attribute all-range Gram factors (closed form, public helper)."""
    return [all_range_gram(size) for size in shape]


def _time(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run() -> dict:
    rows = []
    for shape in DENSE_SHAPES:
        grams = _factor_grams(shape)
        cells = int(np.prod(shape))

        def dense_path():
            product = grams[0]
            for gram in grams[1:]:
                product = np.kron(product, gram)
            return np.clip(np.linalg.eigvalsh(product)[::-1], 0.0, None)

        def factorized_path():
            return KroneckerEigenbasis.from_gram_factors(grams).sorted_values

        dense_seconds, dense_values = _time(dense_path)
        factorized_seconds, factorized_values = _time(factorized_path)
        deviation = float(np.max(np.abs(dense_values - factorized_values)) / dense_values[0])
        rows.append(
            {
                "shape": list(shape),
                "cells": cells,
                "dense_seconds": dense_seconds,
                "factorized_seconds": factorized_seconds,
                "speedup": dense_seconds / max(factorized_seconds, 1e-12),
                "max_relative_eigenvalue_deviation": deviation,
            }
        )
    for shape in FACTORIZED_ONLY_SHAPES:
        grams = _factor_grams(shape)
        factorized_seconds, values = _time(
            lambda: KroneckerEigenbasis.from_gram_factors(grams).sorted_values
        )
        rows.append(
            {
                "shape": list(shape),
                "cells": int(np.prod(shape)),
                "dense_seconds": None,
                "factorized_seconds": factorized_seconds,
                "speedup": None,
                "max_relative_eigenvalue_deviation": None,
            }
        )
        del values
    largest_dense = max(
        (row for row in rows if row["dense_seconds"] is not None),
        key=lambda row: row["cells"],
    )
    report = {
        "benchmark": "kron_fastpath",
        "workload": "all multi-dimensional range queries",
        "target_speedup": TARGET_SPEEDUP,
        "largest_dense_cells": largest_dense["cells"],
        "speedup_at_largest_dense": largest_dense["speedup"],
        "rows": rows,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_kron_fastpath_speedup():
    """Factorized eigen-decomposition is >= 10x faster at the largest dense n."""
    report = run()
    assert report["speedup_at_largest_dense"] >= TARGET_SPEEDUP
    for row in report["rows"]:
        if row["max_relative_eigenvalue_deviation"] is not None:
            assert row["max_relative_eigenvalue_deviation"] <= 1e-8


if __name__ == "__main__":
    report = run()
    print(json.dumps(report, indent=2))
    print(f"\n[written to {RESULT_PATH}]")
