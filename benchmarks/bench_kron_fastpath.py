"""Micro-benchmark: dense vs factorized Kronecker fast paths.

Tracks the perf trajectory of the structured-operator layer across PRs.
Three sections:

* **eigh** — dense ``O(n^3)`` eigendecomposition of the ``np.kron`` Gram vs
  the per-factor factorized decomposition;
* **completed_trace** — the error trace ``trace(W^T W (A^T A)^{-1})`` of a
  *completed* (``complete=True``) factorized eigen design: dense
  densify-plus-Cholesky vs the Woodbury identity (exact, small completion
  rank relative to the budget) or the preconditioned-CG + Hutch++ stochastic
  estimate (large rank);
* **reductions** — the Sec. 4.2 reductions (principal vectors and
  eigen-query separation with its lazy ``GroupColumnOperator`` stage 2),
  dense eigen-query matrix vs the matrix-free ``KroneckerConstraints`` path;
* **recycled_trace** — the Krylov-recycling machinery: the stochastic
  completed-design trace evaluated twice on the same strategy, tracking the
  wall-clock and PCG-iteration drop of the recycled second evaluation;
* **engine_plan_cache** — the engine layer: a cold planner run (strategy
  optimization included) vs. a warm content-addressed
  :class:`~repro.engine.cache.PlanCache` hit on a structurally identical
  workload, asserting the warm path skips strategy optimization.

Emits ``BENCH_kron_fastpath.json`` at the repository root with one row per
domain size (dense and factorized wall-clock, speedup, deviation), so
regressions in either speed or numerical agreement are visible in version
control.

Run with:  python benchmarks/bench_kron_fastpath.py
(or via pytest; no plugin fixtures are required).  Set ``REPRO_BENCH_QUICK=1``
for a CI smoke run: only the smallest shape per section, and the JSON is not
rewritten.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.eigen_design import eigen_design
from repro.core.error import workload_strategy_trace
from repro.core.reductions import eigen_query_separation, principal_vectors
from repro.utils.linalg import trace_ratio
from repro.utils.operators import (
    HARD_MATERIALIZATION_LIMIT,
    KroneckerEigenbasis,
    gram_to_dense,
    within_materialization_budget,
)
from repro.workloads import all_range_queries
from repro.workloads.gram import all_range_gram

#: Shapes benchmarked on both paths (the dense oracle stays feasible here).
DENSE_SHAPES = ((8, 8, 8), (16, 16, 4), (16, 16, 8), (16, 16, 16))

#: Shapes only the factorized path can reach (dense would need >= 2 GiB).
FACTORIZED_ONLY_SHAPES = ((32, 32, 16), (32, 32, 32), (64, 64, 32))

#: Completed-design trace cases: ``(shape, synthetic_rank)``.  With
#: ``synthetic_rank = None`` the design's own completion diagonal is used
#: (heavy: nearly every cell is deficient, exercising the CG + Hutch++
#: stochastic path at the largest dense-feasible size); with an integer, only
#: the ``k`` largest deficits are kept — the low-rank completion regime the
#: exact Woodbury identity is built for.
COMPLETED_CASES = (((16, 16, 4), 64), ((16, 16, 16), None))
COMPLETED_CASES_QUICK = (((8, 8, 8), 16),)

#: Reduction comparison shape (also the acceptance shape for the speedup
#: assertion below).  The factorized path's headline win is
#: memory/feasibility (no dense eigen-query matrix, no O(n^3) eigh; beyond
#: the budget it is the *only* path, tested in
#: tests/test_woodbury_completion.py) — but since the batched dual-ascent
#: solver and the under-budget slice densification landed it also wins
#: wall-clock at dense-feasible sizes, and the rows assert it stays that way.
REDUCTION_DENSE_SHAPE = (16, 16, 8)

#: Recycled-trace shapes: the stochastic completed-design trace evaluated
#: twice on the same strategy (clears the recycler registry first, so the
#: first evaluation is honestly cold).
RECYCLED_SHAPES = ((16, 16, 16),)
RECYCLED_SHAPES_QUICK = ((8, 8, 8),)

#: The acceptance bar tracked across PRs (eigh and completed trace alike).
TARGET_SPEEDUP = 10.0

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kron_fastpath.json"


def _lint_metadata() -> dict:
    """Which enforcement regime produced this row: repro-lint version and
    rule count (``tools/repro_lint``), stamped into the report metadata."""
    tools_dir = str(Path(__file__).resolve().parent.parent / "tools")
    if tools_dir not in sys.path:
        sys.path.insert(0, tools_dir)
    try:
        import repro_lint
    except ImportError:  # running outside a repository checkout
        return {"version": None, "rules": 0}
    return {
        "version": repro_lint.__version__,
        "rules": len(repro_lint.ALL_CHECKERS),
    }


def _factor_grams(shape: tuple[int, ...]) -> list[np.ndarray]:
    """Per-attribute all-range Gram factors (closed form, public helper)."""
    return [all_range_gram(size) for size in shape]


def _clear_eigh_cache() -> None:
    """Drop the content-addressed eigh memo so timings stay cold and honest."""
    from repro.utils.operators import _FACTOR_EIGH_CACHE

    _FACTOR_EIGH_CACHE.clear()


def _time(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _eigh_rows(dense_shapes, factorized_shapes) -> list[dict]:
    rows = []
    for shape in dense_shapes:
        grams = _factor_grams(shape)
        cells = int(np.prod(shape))

        def dense_path():
            product = grams[0]
            for gram in grams[1:]:
                product = np.kron(product, gram)
            return np.clip(np.linalg.eigvalsh(product)[::-1], 0.0, None)

        dense_seconds, dense_values = _time(dense_path)
        _clear_eigh_cache()  # keep the factorized timing cold (no memo hits)
        factorized_seconds, factorized_values = _time(
            lambda: KroneckerEigenbasis.from_gram_factors(grams).sorted_values
        )
        deviation = float(np.max(np.abs(dense_values - factorized_values)) / dense_values[0])
        rows.append(
            {
                "shape": list(shape),
                "cells": cells,
                "dense_seconds": dense_seconds,
                "factorized_seconds": factorized_seconds,
                "speedup": dense_seconds / max(factorized_seconds, 1e-12),
                "max_relative_eigenvalue_deviation": deviation,
            }
        )
    for shape in factorized_shapes:
        grams = _factor_grams(shape)
        factorized_seconds, values = _time(
            lambda: KroneckerEigenbasis.from_gram_factors(grams).sorted_values
        )
        rows.append(
            {
                "shape": list(shape),
                "cells": int(np.prod(shape)),
                "dense_seconds": None,
                "factorized_seconds": factorized_seconds,
                "speedup": None,
                "max_relative_eigenvalue_deviation": None,
            }
        )
        del values
    return rows


def _completed_trace_rows(cases) -> list[dict]:
    from repro.core.strategy import Strategy
    from repro.utils.operators import EigenDiagOperator

    rows = []
    for shape, synthetic_rank in cases:
        workload = all_range_queries(list(shape))
        design = eigen_design(workload, factorized=True, complete=True)
        operator = design.strategy.gram_operator
        strategy = design.strategy
        if synthetic_rank is not None:
            # Keep only the k largest completion deficits: the low-rank
            # completion regime (near-uniform column norms) where the exact
            # Woodbury path shines.
            diag = operator.diag.copy()
            keep = np.argsort(-diag)[:synthetic_rank]
            trimmed = np.zeros_like(diag)
            trimmed[keep] = diag[keep]
            operator = EigenDiagOperator(operator.basis, operator.spectrum, trimmed)
            strategy = Strategy.from_gram_operator(operator, name="completed-lowrank")
        cells = workload.column_count
        completion_rank = int(np.count_nonzero(operator.diag))
        exact = within_materialization_budget(cells, max(2 * completion_rank, 1))

        _clear_eigh_cache()
        structured_seconds, structured_value = _time(
            lambda: workload_strategy_trace(workload, strategy)
        )
        dense_seconds, dense_value = _time(
            lambda: trace_ratio(
                gram_to_dense(workload.gram_operator, limit=HARD_MATERIALIZATION_LIMIT),
                gram_to_dense(operator, limit=HARD_MATERIALIZATION_LIMIT),
            )
        )
        rows.append(
            {
                "shape": list(shape),
                "cells": cells,
                "completion_rank": completion_rank,
                "path": "woodbury-exact" if exact else "cg-hutchpp",
                "dense_seconds": dense_seconds,
                "factorized_seconds": structured_seconds,
                "speedup": dense_seconds / max(structured_seconds, 1e-12),
                "relative_trace_deviation": float(
                    abs(structured_value - dense_value) / max(abs(dense_value), 1e-12)
                ),
            }
        )
    return rows


def _reduction_rows(shape=REDUCTION_DENSE_SHAPE, repeats=3) -> list[dict]:
    """Sec. 4.2 reductions, dense vs factorized, min-of-``repeats`` timing.

    Every timed run gets a *fresh* workload object and a cold factor-eigh
    memo: both the per-instance eigen-decomposition cache and the
    content-addressed ``_FACTOR_EIGH_CACHE`` would otherwise hand later runs
    warm spectra and distort the ratio.  Taking the minimum over repeats
    suppresses scheduler noise, which matters because the factorized win at
    dense-feasible sizes is structural but modest.
    """
    cells = int(np.prod(shape))
    group_size = max(2, cells // 16)
    cases = (
        (
            "principal-vectors (5%)",
            lambda workload, factorized: principal_vectors(
                workload, fraction=0.05, factorized=factorized
            ),
        ),
        (
            "eigen-separation (stage-2 operator)",
            lambda workload, factorized: eigen_query_separation(
                workload, group_size=group_size, factorized=factorized
            ),
        ),
    )
    rows = []
    for method, run_reduction in cases:
        dense_seconds = factorized_seconds = float("inf")
        for _ in range(max(1, repeats)):
            workload = all_range_queries(list(shape))
            _clear_eigh_cache()
            seconds, dense_result = _time(lambda: run_reduction(workload, False))
            dense_seconds = min(dense_seconds, seconds)
            workload = all_range_queries(list(shape))
            _clear_eigh_cache()
            seconds, factorized_result = _time(lambda: run_reduction(workload, True))
            factorized_seconds = min(factorized_seconds, seconds)
        dense_error = workload_strategy_trace(workload, dense_result.strategy)
        factorized_error = workload_strategy_trace(workload, factorized_result.strategy)
        rows.append(
            {
                "shape": list(shape),
                "cells": cells,
                "method": method,
                "dense_seconds": dense_seconds,
                "factorized_seconds": factorized_seconds,
                "speedup": dense_seconds / max(factorized_seconds, 1e-12),
                "relative_trace_deviation": float(
                    abs(factorized_error - dense_error) / max(abs(dense_error), 1e-12)
                ),
            }
        )
    return rows


def _recycled_trace_rows(shapes) -> list[dict]:
    """First vs second (recycled) stochastic completed-trace evaluation."""
    import repro.core.error as error_module

    rows = []
    for shape in shapes:
        workload = all_range_queries(list(shape))
        design = eigen_design(workload, factorized=True, complete=True)
        operator = design.strategy.gram_operator
        error_module.clear_trace_recyclers()
        _clear_eigh_cache()
        first_seconds, first_value = _time(
            lambda: error_module._stochastic_completed_trace(
                workload.gram_operator, operator
            )
        )
        first_stats = dict(error_module.STOCHASTIC_TRACE_LAST)
        second_seconds, second_value = _time(
            lambda: error_module._stochastic_completed_trace(
                workload.gram_operator, operator
            )
        )
        second_stats = dict(error_module.STOCHASTIC_TRACE_LAST)
        rows.append(
            {
                "shape": list(shape),
                "cells": workload.column_count,
                "first_seconds": first_seconds,
                "second_seconds": second_seconds,
                "speedup": first_seconds / max(second_seconds, 1e-12),
                "first_column_iterations": first_stats["column_iterations"],
                "second_column_iterations": second_stats["column_iterations"],
                "recycled_sketch": second_stats["recycled_sketch"],
                "relative_deviation": float(
                    abs(second_value - first_value) / max(abs(first_value), 1e-12)
                ),
            }
        )
    return rows


#: Engine plan-cache smoke shapes (cold plan vs. warm content-addressed hit).
ENGINE_SHAPES = ((16, 16, 4), (32, 32, 16))
ENGINE_SHAPES_QUICK = ((8, 8, 4),)


def _engine_rows(shapes) -> list[dict]:
    """Cold planner run vs. warm PlanCache hit on the same workload shape.

    The warm request builds a *new* workload object with identical content;
    the content-addressed plan cache must serve it without re-running
    strategy optimization (``plans_built`` stays at 1), which is the whole
    point of the engine layer for repeated workload shapes.
    """
    from repro.core.privacy import PrivacyParams
    from repro.engine import Planner

    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)
    rows = []
    for shape in shapes:
        _clear_eigh_cache()
        planner = Planner()
        cold_seconds, cold_plan = _time(
            lambda: planner.plan(all_range_queries(list(shape)), privacy)
        )
        warm_seconds, warm_plan = _time(
            lambda: planner.plan(all_range_queries(list(shape)), privacy)
        )
        warm_hit = warm_plan is cold_plan
        # The warm path must have skipped strategy optimization entirely.
        assert warm_hit and planner.plans_built == 1, (
            f"plan cache failed to serve shape {shape}: "
            f"plans_built={planner.plans_built}"
        )
        rows.append(
            {
                "shape": list(shape),
                "cells": int(np.prod(shape)),
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "speedup": cold_seconds / max(warm_seconds, 1e-12),
                "plans_built": planner.plans_built,
                "warm_hit": warm_hit,
                "mechanism": cold_plan.mechanism.name,
            }
        )
    return rows


def _largest_dense(rows: list[dict]) -> dict:
    return max(
        (row for row in rows if row["dense_seconds"] is not None),
        key=lambda row: row["cells"],
    )


def run() -> dict:
    if QUICK:
        eigh_rows = _eigh_rows(DENSE_SHAPES[:1], FACTORIZED_ONLY_SHAPES[:1])
        completed_rows = _completed_trace_rows(COMPLETED_CASES_QUICK)
        # The reductions smoke runs at the full acceptance shape (not a
        # scaled-down one): the factorized-vs-dense ratio is what the row
        # asserts, and at toy sizes it is pure timing noise.
        reduction_rows = _reduction_rows()
        recycled_rows = _recycled_trace_rows(RECYCLED_SHAPES_QUICK)
        engine_rows = _engine_rows(ENGINE_SHAPES_QUICK)
    else:
        eigh_rows = _eigh_rows(DENSE_SHAPES, FACTORIZED_ONLY_SHAPES)
        completed_rows = _completed_trace_rows(COMPLETED_CASES)
        reduction_rows = _reduction_rows()
        recycled_rows = _recycled_trace_rows(RECYCLED_SHAPES)
        engine_rows = _engine_rows(ENGINE_SHAPES)

    from repro.utils.backend import get_backend

    backend_name = get_backend().name
    for section in (eigh_rows, completed_rows, reduction_rows, recycled_rows, engine_rows):
        for row in section:
            row["backend"] = backend_name

    slow = [row for row in reduction_rows if row["speedup"] < 1.0]
    assert not slow, (
        "factorized Sec. 4.2 reductions regressed below dense at the "
        "acceptance shape: "
        + "; ".join(f"{row['method']}: {row['speedup']:.3f}x" for row in slow)
    )

    largest_eigh = _largest_dense(eigh_rows)
    largest_completed = _largest_dense(completed_rows)
    report = {
        "benchmark": "kron_fastpath",
        "workload": "all multi-dimensional range queries",
        "backend": backend_name,
        "lint": _lint_metadata(),
        "target_speedup": TARGET_SPEEDUP,
        "largest_dense_cells": largest_eigh["cells"],
        "speedup_at_largest_dense": largest_eigh["speedup"],
        "rows": eigh_rows,
        "completed_trace": {
            "target_speedup": TARGET_SPEEDUP,
            "largest_dense_cells": largest_completed["cells"],
            "speedup_at_largest_dense": largest_completed["speedup"],
            "rows": completed_rows,
        },
        "reductions": {"rows": reduction_rows},
        "recycled_trace": {"rows": recycled_rows},
        "engine_plan_cache": {"rows": engine_rows},
    }
    if not QUICK:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_kron_fastpath_speedup():
    """Factorized eigh AND the completed-design trace are >= 10x faster dense."""
    report = run()
    assert report["speedup_at_largest_dense"] >= TARGET_SPEEDUP
    for row in report["rows"]:
        if row["max_relative_eigenvalue_deviation"] is not None:
            assert row["max_relative_eigenvalue_deviation"] <= 1e-8
    completed = report["completed_trace"]
    assert completed["speedup_at_largest_dense"] >= TARGET_SPEEDUP
    for row in completed["rows"]:
        # The exact Woodbury path matches the dense oracle tightly; the
        # stochastic fallback is an estimator with documented knobs.
        bound = 1e-8 if row["path"] == "woodbury-exact" else 1e-2
        assert row["relative_trace_deviation"] <= bound
    for row in report["reductions"]["rows"]:
        if row["relative_trace_deviation"] is not None:
            assert row["relative_trace_deviation"] <= 1e-6
        # The factorized path must beat (or at worst match) the dense path
        # even at dense-feasible sizes — the small-domain regression the
        # batched solver work retired must stay retired.
        assert row["speedup"] >= 1.0, f"{row['method']}: {row['speedup']:.3f}x"
    for row in report["recycled_trace"]["rows"]:
        # The recycled second evaluation must use measurably fewer PCG
        # iterations (the Galerkin guess restarts it essentially converged).
        assert row["second_column_iterations"] < row["first_column_iterations"]
        assert row["recycled_sketch"]
        assert row["relative_deviation"] <= 1e-6
    for row in report["engine_plan_cache"]["rows"]:
        # A structurally identical workload must hit the plan cache and skip
        # strategy optimization entirely.
        assert row["warm_hit"] and row["plans_built"] == 1
        assert row["warm_seconds"] < row["cold_seconds"]


if __name__ == "__main__":
    report = run()
    print(json.dumps(report, indent=2))
    if not QUICK:
        print(f"\n[written to {RESULT_PATH}]")
