"""E3 — Fig. 3(b): relative error on range workloads over the two datasets.

The paper measures average relative error on the US Census and Adult datasets
for epsilon in {0.1, 0.5, 1, 2.5} (delta fixed at 1e-4), comparing
Hierarchical, Wavelet and the Eigen design.  The datasets here are the
synthetic stand-ins documented in DESIGN.md; the workload is a sample of
range queries (the full all-range workload cannot be materialised for
answering, and the paper's random-range panel is the directly comparable one).
The eigen strategy is computed on the row-normalised workload, the relative
error heuristic of Sec. 3.4.
"""

from __future__ import annotations

import pytest

from repro import PrivacyParams, eigen_design
from repro.datasets import adult_like, census_like
from repro.evaluation import format_table, relative_error
from repro.strategies import hierarchical_strategy, wavelet_strategy
from repro.workloads import random_range_queries

from _util import PAPER_SCALE, emit

EPSILONS = (0.1, 0.5, 1.0, 2.5)
QUERY_COUNT = 300 if PAPER_SCALE else 120
TRIALS = 5 if PAPER_SCALE else 2
CENSUS_TOTAL = 15_000_000 if PAPER_SCALE else 1_000_000


def _dataset(name):
    if name == "census":
        return census_like(total=CENSUS_TOTAL, random_state=0)
    return adult_like(random_state=0)


@pytest.mark.parametrize("dataset_name", ["census", "adult"])
def test_fig3b_relative_error_ranges(benchmark, dataset_name):
    dataset = _dataset(dataset_name)
    workload = random_range_queries(dataset.domain, QUERY_COUNT, random_state=7)
    strategies = {
        "hierarchical": hierarchical_strategy(dataset.domain),
        "wavelet": wavelet_strategy(dataset.domain),
        "eigen-design": eigen_design(workload.normalize_rows()).strategy,
    }

    def run():
        rows = []
        for epsilon in EPSILONS:
            privacy = PrivacyParams(epsilon=epsilon, delta=1e-4)
            for name, strategy in strategies.items():
                result = relative_error(
                    workload, strategy, dataset, privacy, trials=TRIALS, random_state=11
                )
                rows.append(
                    {
                        "dataset": dataset.name,
                        "epsilon": epsilon,
                        "strategy": name,
                        "mean relative error": result.mean_relative_error,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"fig3b_{dataset_name}",
        format_table(
            rows,
            precision=4,
            title=f"E3 (Fig. 3b): relative error on random range queries, {dataset.name}",
        ),
    )

    # Paper shape: the eigen design reduces relative error by ~1.3x-1.5x over
    # the best competitor, at every epsilon.
    for epsilon in EPSILONS:
        subset = {row["strategy"]: row["mean relative error"] for row in rows if row["epsilon"] == epsilon}
        assert subset["eigen-design"] <= min(subset["hierarchical"], subset["wavelet"]) * 1.05
