"""E6 — Table 2: alternative workloads (permuted ranges, range marginals, CDF, predicates).

For each alternative workload the paper reports the factor by which the Eigen
design reduces error relative to the best and worst competitor, plus the
ratio of the lower bound to the eigen error.  The reduced default uses
256-cell domains (``REPRO_PAPER_SCALE=1`` switches to 2048 cells as in the
paper).
"""

from __future__ import annotations

from repro import eigen_design, expected_workload_error, minimum_error_bound
from repro.domain import Domain
from repro.evaluation import format_table
from repro.strategies import (
    datacube_strategy,
    fourier_strategy,
    hierarchical_strategy,
    wavelet_strategy,
)
from repro.workloads import (
    all_range_queries_1d,
    cdf_workload,
    kway_range_marginals,
    marginal_attribute_sets,
    permuted_workload,
    random_predicate_queries,
)

from _util import PAPER_SCALE, emit

CELLS = 2048 if PAPER_SCALE else 256
MARGINAL_DIMS = [16, 16, 8] if PAPER_SCALE else [8, 8, 4]
PAPER_ROWS = {
    "1D range (permuted)": {"best": 9.62, "worst": 13.16, "bound": 0.99},
    "1-way range marginal": {"best": 1.30, "worst": 7.69, "bound": 0.98},
    "2-way range marginal": {"best": 1.63, "worst": 3.23, "bound": 0.95},
    "1D CDF": {"best": 1.01, "worst": 1.01, "bound": 0.80},
    "predicate": {"best": 1.39, "worst": 1.94, "bound": 1.00},
}


def _competitors_for_ranges(cells):
    return {"wavelet": wavelet_strategy(cells), "hierarchical": hierarchical_strategy(cells)}


def _workload_suite():
    domain = Domain(MARGINAL_DIMS)
    suite = {}
    suite["1D range (permuted)"] = (
        permuted_workload(all_range_queries_1d(CELLS), random_state=3),
        _competitors_for_ranges(CELLS),
    )
    suite["1-way range marginal"] = (
        kway_range_marginals(domain, 1),
        {
            "fourier": fourier_strategy(domain, 1),
            "datacube": datacube_strategy(domain, marginal_attribute_sets(domain, 1)),
            "wavelet": wavelet_strategy(domain),
            "hierarchical": hierarchical_strategy(domain),
        },
    )
    suite["2-way range marginal"] = (
        kway_range_marginals(domain, 2),
        {
            "fourier": fourier_strategy(domain, 2),
            "datacube": datacube_strategy(domain, marginal_attribute_sets(domain, 2)),
            "wavelet": wavelet_strategy(domain),
            "hierarchical": hierarchical_strategy(domain),
        },
    )
    suite["1D CDF"] = (cdf_workload(CELLS), _competitors_for_ranges(CELLS))
    suite["predicate"] = (
        random_predicate_queries(CELLS, 2 * CELLS, random_state=0),
        {
            "wavelet": wavelet_strategy(CELLS),
            "hierarchical": hierarchical_strategy(CELLS),
            "fourier": fourier_strategy(Domain([CELLS]), None),
        },
    )
    return suite


def test_table2_alternative_workloads(benchmark, privacy):
    suite = _workload_suite()

    def run():
        rows = []
        for label, (workload, competitors) in suite.items():
            eigen_error = expected_workload_error(workload, eigen_design(workload).strategy, privacy)
            errors = {
                name: expected_workload_error(workload, strategy, privacy)
                for name, strategy in competitors.items()
            }
            finite = {k: v for k, v in errors.items() if v != float("inf")}
            best_name = min(finite, key=finite.get)
            worst_name = max(finite, key=finite.get)
            bound = minimum_error_bound(workload, privacy)
            paper = PAPER_ROWS[label]
            rows.append(
                {
                    "workload": label,
                    "best/eigen": finite[best_name] / eigen_error,
                    "worst/eigen": finite[worst_name] / eigen_error,
                    "bound/eigen": bound / eigen_error,
                    "paper best/worst": f"{paper['best']}/{paper['worst']}",
                    "paper bound": paper["bound"],
                    "best competitor": best_name,
                    "worst competitor": worst_name,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table2_alternative_workloads",
        format_table(
            rows,
            precision=2,
            title=(
                "E6 (Table 2): error-reduction factors of the eigen design on alternative workloads "
                f"({CELLS} cells{' - paper scale' if PAPER_SCALE else ''})"
            ),
        ),
    )
    by_label = {row["workload"]: row for row in rows}
    # Paper shape: large wins on permuted ranges, clear wins on range marginals
    # and predicates, and roughly break-even on the highly skewed CDF workload.
    assert by_label["1D range (permuted)"]["best/eigen"] > 2.0
    assert by_label["1-way range marginal"]["best/eigen"] >= 1.0
    assert by_label["2-way range marginal"]["best/eigen"] >= 1.0
    assert by_label["predicate"]["best/eigen"] > 1.0
    assert by_label["1D CDF"]["best/eigen"] > 0.9
    for row in rows:
        assert row["bound/eigen"] <= 1.0 + 1e-9
