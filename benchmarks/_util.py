"""Shared helpers for the benchmark suite.

Every benchmark reproduces one table or figure of the paper: it computes the
same rows/series the paper reports (at a laptop-friendly default scale),
prints them, and writes them to ``benchmarks/results/<name>.txt`` so the
output survives pytest's capture.  Set the environment variable
``REPRO_PAPER_SCALE=1`` to run the paper-scale configurations (slower).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: True when the benchmarks should use the paper's full domain sizes.
PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false", "False")


def scale(default: int, paper: int) -> int:
    """Pick the default or paper-scale value of a size parameter."""
    return paper if PAPER_SCALE else default


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
