"""Serving-throughput benchmark: sessions x workers over one shared engine.

Measures what the serving layer (``repro.engine.server``) is for: answers
per second from a pool of concurrent tenants sharing one planner and one
content-addressed plan cache, swept over worker counts **and both
execution tiers** (``thread`` and ``process``).  Two paths:

* **paid** — every request runs the full warm pipeline: plan-cache hit
  (strategy optimization skipped), mechanism run (noise + inference), and
  an atomic budget charge.  Requests bring their own data vector so each
  one genuinely executes instead of reusing a release.  On the ``process``
  tier this work runs on worker processes — past the GIL — with plans
  shipped once per worker by content address.
* **reuse** — each tenant pays once, then hammers requests served from the
  released estimate: the per-request work is exactly the shard-parallel
  ``W @ x_hat`` derivation, the hot path of a warm dashboard.  Reuse
  requests pass ``coalesce=False``: the point is per-request throughput,
  and identical concurrent requests would otherwise collapse into one
  execution.

A **coalescing burst** is also measured: N identical concurrent requests
from one tenant must produce exactly one release and one budget charge
(leaders + followers are reported from the server's counters).

Timing is **warmed up and best-of-3**: each phase runs once untimed, then
three timed repeats keep the best — one scheduler hiccup no longer moves
``reuse_speedup_vs_1``.

Emits an ``engine_throughput`` section into ``BENCH_kron_fastpath.json``
(read-modify-write: the other sections are preserved) with one row per
(execution, workers) pair: answers/sec on both paths, the plan-cache hit
rate, speedups over the 1-worker thread row, and the server's per-stage
latency snapshot.  A second ``engine_store`` section (:func:`run_store`)
measures the durable state tier: cold-boot vs warm-reboot first-answer
latency (the warmed plan cache must skip strategy optimization entirely)
and the per-answer cost of the write-ahead budget ledger, asserted below
10% of a paid answer.  A third ``engine_forecast`` section
(:func:`run_forecast`) measures the forecasting tier: the first answer on a
correctly-forecast shape (plan pre-warmed from last epoch's arrivals)
against the reactive cold start that pays strategy optimization inline —
with the answers asserted bit-for-bit identical, since pre-planning moves
*when* the plan is built, never *what* is answered.  ``cpu_count`` is
recorded alongside — scaling is physically bounded by it, so the
accompanying test only asserts the four-worker speedup bars when four
cores exist.

BLAS pools are pinned to one thread (before numpy loads) so the sweep
measures *engine* concurrency, not the BLAS library's internal pool — when
run under pytest numpy may already be loaded and the pin is best-effort.

Run with:  python benchmarks/bench_engine_throughput.py [--workers N]
``--workers N`` sweeps (1, N) instead of the default ladder — the CI smoke
job runs ``--workers 2``.  Set ``REPRO_BENCH_QUICK=1`` for a smoke run
(small domain, fewer requests, JSON not rewritten).
"""

from __future__ import annotations

import os

for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.privacy import PrivacyParams
from repro.core.workload import Workload
from repro.engine import ForecastEngine, Planner, Server, StateStore
from repro.engine.planner import REFERENCE_PRIVACY

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Domain size: big enough that one request is dominated by GIL-releasing
#: numpy work (matvecs, the cached least-squares solve), small enough that
#: the full sweep stays in seconds.
CELLS = 256 if QUICK else 2048

#: Worker counts swept (the 1-worker thread row is the speedup baseline).
WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4)

#: Tenants sharing the server and requests per phase.
TENANTS = 4 if QUICK else 8
PAID_REQUESTS = 8 if QUICK else 48
REUSE_REQUESTS = 16 if QUICK else 96
BURST_REQUESTS = 8 if QUICK else 16

#: Timed repeats per phase (after one untimed warmup); the best is kept.
REPEATS = 3

#: Ample per-tenant budget: throughput, not budget exhaustion, is measured.
TENANT_BUDGET = PrivacyParams(epsilon=1e6, delta=1e-4)
REQUEST_EPSILON = 1.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kron_fastpath.json"


def _prefix_workload(cells: int) -> Workload:
    """All 1-D prefix ranges: an ``n x n`` lower-triangular query matrix."""
    return Workload(np.tril(np.ones((cells, cells))), name=f"prefix-{cells}")


def _data_vector(cells: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 50, size=cells).astype(float)


def _measure(run, count: int, *, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` answers/sec after one untimed warmup run.

    The warmup absorbs one-time costs (first-touch allocations, plan
    shipping to worker processes); taking the best repeat rather than the
    mean keeps the ratio rows stable against scheduler noise.
    """
    run()
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = max(best, count / max(time.perf_counter() - started, 1e-9))
    return best


def _throughput_row(
    workers: int, planner: Planner, workload: Workload, execution: str
) -> dict:
    data = _data_vector(CELLS)
    server = Server(
        TENANT_BUDGET,
        data=data,
        planner=planner,
        workers=workers,
        shard_min_rows=512,
        execution=execution,
        random_state=0,
    )
    tenants = [f"tenant-{i}" for i in range(TENANTS)]
    for tenant in tenants:
        server.open_session(tenant)
    hits_before = planner.cache.hits
    lookups_before = planner.cache.hits + planner.cache.misses

    # Paid path: per-request data => every request executes the mechanism
    # (and, by the same token, never coalesces with its identical siblings).
    paid = [
        (tenants[i % TENANTS], workload, {"epsilon": REQUEST_EPSILON, "data": data})
        for i in range(PAID_REQUESTS)
    ]
    paid_per_sec = _measure(lambda: server.ask_many(paid), PAID_REQUESTS)
    hit_rate = (planner.cache.hits - hits_before) / max(
        planner.cache.hits + planner.cache.misses - lookups_before, 1
    )

    # Reuse path: one paid release per tenant, then free derived answers.
    # coalesce=False — per-request throughput is the quantity under test;
    # coalescing identical concurrent requests would serve N for the price
    # of one and report a fictitious rate.
    for tenant in tenants:
        server.ask(tenant, workload, epsilon=REQUEST_EPSILON)
    reuse = [
        (tenants[i % TENANTS], workload, {"coalesce": False})
        for i in range(REUSE_REQUESTS)
    ]
    answers = server.ask_many(reuse)
    assert all(a.served_from_release for a in answers), "reuse path must be free"
    reuse_per_sec = _measure(lambda: server.ask_many(reuse), REUSE_REQUESTS)

    stats = server.stats()
    server.close()
    row = {
        "execution": execution,
        "workers": workers,
        "tenants": TENANTS,
        "paid_requests": PAID_REQUESTS,
        "reuse_requests": REUSE_REQUESTS,
        "paid_answers_per_sec": paid_per_sec,
        "reuse_answers_per_sec": reuse_per_sec,
        "plan_cache_hit_rate": hit_rate,
        "stages": stats["stages"],
        "max_spent_epsilon": max(
            entry["epsilon"] for entry in stats["spent"].values()
        ),
    }
    if stats["process_executor"] is not None:
        row["process_executor"] = stats["process_executor"]
    return row


def _coalescing_burst(planner: Planner, workload: Workload) -> dict:
    """Fire BURST_REQUESTS identical concurrent requests from one tenant.

    Invariants asserted from the server's own counters: exactly one
    release (one plan execution) and exactly one budget charge, however
    the burst raced — every other request was a coalesced follower or a
    free post-completion reuse of the release.
    """
    data = _data_vector(CELLS)
    server = Server(
        TENANT_BUDGET,
        data=data,
        planner=planner,
        workers=min(BURST_REQUESTS, 8),
        shard_min_rows=512,
        random_state=0,
    )
    session = server.open_session("burst")
    futures = [
        server.submit("burst", workload, epsilon=REQUEST_EPSILON)
        for _ in range(BURST_REQUESTS)
    ]
    started = time.perf_counter()
    answers = [future.result() for future in futures]
    elapsed = time.perf_counter() - started
    stats = server.stats()
    server.close()
    # Followers receive the leader's SessionAnswer *object* (spent and all),
    # so "charged once" is asserted on the accountant, not on the answers:
    # exactly one debit, exactly one release, one distinct paid answer.
    distinct_paid = {id(a) for a in answers if a.spent is not None}
    assert len(distinct_paid) == 1, (
        f"burst must execute exactly one paid answer, got {len(distinct_paid)}"
    )
    assert session.releases == 1, "burst must execute exactly once"
    assert session.accountant.spent_epsilon == REQUEST_EPSILON
    reference = answers[0].estimate
    for answer in answers[1:]:
        np.testing.assert_array_equal(answer.estimate, reference)
    return {
        "burst": BURST_REQUESTS,
        "charges": len(session.accountant.history),
        "releases": session.releases,
        "leaders": stats["coalesce"]["leaders"],
        "followers": stats["coalesce"]["followers"],
        "answers_per_sec": BURST_REQUESTS / max(elapsed, 1e-9),
    }


#: Write-ahead roundtrips timed for the ledger-overhead microbench.
LEDGER_ROUNDS = 20 if QUICK else 100

#: Warm paid answers averaged for the per-answer denominator.
STORE_PAID_ANSWERS = 4 if QUICK else 12

#: Domain size for the store section.  A ledger roundtrip is two SQLite
#: transactions (~0.1-0.3 ms even on WAL + synchronous=NORMAL), a fixed
#: per-answer cost — so the overhead *fraction* is only meaningful against
#: a realistically sized paid answer, not a toy one.  512 cells keeps the
#: quick run in seconds while the paid answer (noise + inference on an
#: n x n prefix workload) stays in the milliseconds.
STORE_CELLS = 512 if QUICK else 2048


def run_store() -> dict:
    """Benchmark the durable state tier: warm reboots and ledger overhead.

    Two questions, each answered against a real on-disk store:

    * **what does a restart cost?** — the first answer on a cold (empty)
      store pays strategy optimization; the first answer after a *reboot*
      (fresh server + fresh planner over the same file) must ride the
      warmed plan cache, so the ratio is roughly the optimization time
      saved per restart.  ``warm_plans_built`` is asserted to be zero.
    * **what does crash-safety cost per answer?** — the write-ahead ledger
      adds one ``BEGIN IMMEDIATE``/``INSERT``/``COMMIT`` plus one settle
      ``UPDATE`` per paid answer.  The microbenched roundtrip is compared
      against a whole warm paid answer; WAL with ``synchronous=NORMAL``
      keeps the fraction far under the 10% budget the test asserts.
    """
    workload = _prefix_workload(STORE_CELLS)
    data = _data_vector(STORE_CELLS)
    path = os.path.join(tempfile.mkdtemp(prefix="repro-bench-store-"), "state.db")

    store = StateStore(path)
    cold_started = time.perf_counter()
    with Server(
        TENANT_BUDGET, data=data, workers=1, store=store, random_state=0
    ) as server:
        server.ask("tenant-0", workload, epsilon=REQUEST_EPSILON, data=data)
        cold_seconds = time.perf_counter() - cold_started

        # Warm paid answers: per-request data forces the full paid pipeline
        # (plan-cache hit, mechanism run, durable charge) on every ask.
        def paid_round():
            for _ in range(STORE_PAID_ANSWERS):
                server.ask("tenant-0", workload, epsilon=REQUEST_EPSILON, data=data)

        paid_per_sec = _measure(paid_round, STORE_PAID_ANSWERS)
        paid_answer_seconds = 1.0 / paid_per_sec

    # Ledger microbench on the same live store: one full write-ahead
    # roundtrip (PENDING commit + settle to SPENT) per paid answer.  A
    # short warmup absorbs first-touch page allocation in the WAL.
    for _ in range(min(10, LEDGER_ROUNDS)):
        entry = store.ledger_begin("bench", PrivacyParams(1e-6, 0.0), "bench")
        store.ledger_settle(entry, "SPENT")
    started = time.perf_counter()
    for _ in range(LEDGER_ROUNDS):
        entry = store.ledger_begin("bench", PrivacyParams(1e-6, 0.0), "bench")
        store.ledger_settle(entry, "SPENT")
    ledger_roundtrip_seconds = (time.perf_counter() - started) / LEDGER_ROUNDS
    store.close()

    # Warm reboot: a fresh planner and cache over the same file — the
    # persisted plan must serve the first answer with zero optimizations.
    reboot_started = time.perf_counter()
    with Server(
        TENANT_BUDGET,
        data=data,
        workers=1,
        store=path,
        planner=Planner(),
        random_state=0,
    ) as server:
        server.ask("tenant-1", workload, epsilon=REQUEST_EPSILON, data=data)
        warm_seconds = time.perf_counter() - reboot_started
        stats = server.stats()
        warm_plans_built = server.planner.plans_built
        plans_warmed = stats["store"]["plans_warmed"]

    section = {
        "workload": f"1-D prefix ranges ({STORE_CELLS} x {STORE_CELLS} lower-triangular)",
        "cells": STORE_CELLS,
        "cold_first_answer_seconds": cold_seconds,
        "warm_reboot_first_answer_seconds": warm_seconds,
        "warm_reboot_speedup": cold_seconds / max(warm_seconds, 1e-9),
        "plans_warmed": plans_warmed,
        "warm_plans_built": warm_plans_built,
        "paid_answer_seconds": paid_answer_seconds,
        "ledger_rounds": LEDGER_ROUNDS,
        "ledger_roundtrip_seconds": ledger_roundtrip_seconds,
        "ledger_overhead_fraction": ledger_roundtrip_seconds / paid_answer_seconds,
    }
    if not QUICK:
        report = {}
        if RESULT_PATH.exists():
            report = json.loads(RESULT_PATH.read_text())
        report["engine_store"] = section
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return section


def run_forecast() -> dict:
    """Benchmark the forecasting tier: pre-planned vs reactive cold start.

    The scenario the forecaster exists for: a shape arrived last epoch, the
    forecaster predicted it would arrive again, and the pre-planner warmed
    the plan cache on idle capacity before the request showed up.  Measured
    head-to-head on fresh servers with identical seeds:

    * **reactive** — a cold server answers the first request, paying the
      whole strategy optimization inline;
    * **pre-planned** — a forecast engine records one arrival, ``tick()``
      re-forecasts and pre-warms (that cost is reported separately as
      ``preplan_seconds`` — it runs on background capacity, not on the
      request), and the first request rides the warm cache.

    Both answers must be bit-for-bit identical (same tenant seed, same
    plan), with identical expected workload error — asserted here, because
    a forecast tier that changed an answer would be a correctness bug
    dressed up as a latency win.
    """
    workload = _prefix_workload(CELLS)
    data = _data_vector(CELLS)

    with Server(TENANT_BUDGET, data=data, workers=1, random_state=0) as server:
        started = time.perf_counter()
        reactive = server.ask("tenant-0", workload, epsilon=REQUEST_EPSILON)
        reactive_seconds = time.perf_counter() - started
        reactive_built = server.planner.plans_built

    planner = Planner()
    engine = ForecastEngine(
        planner, params=REFERENCE_PRIVACY, epoch_seconds=60.0, background=False
    )
    engine.record("tenant-0", workload)
    preplan_started = time.perf_counter()
    prewarmed = engine.tick()
    preplan_seconds = time.perf_counter() - preplan_started
    with Server(
        TENANT_BUDGET,
        data=data,
        workers=1,
        planner=planner,
        forecast=engine,
        random_state=0,
    ) as server:
        built_before = planner.plans_built
        started = time.perf_counter()
        preplanned = server.ask("tenant-0", workload, epsilon=REQUEST_EPSILON)
        preplanned_seconds = time.perf_counter() - started
        request_builds = planner.plans_built - built_before
        forecast_stats = server.stats()["forecast"]

    np.testing.assert_array_equal(preplanned.answers, reactive.answers)
    section = {
        "workload": f"1-D prefix ranges ({CELLS} x {CELLS} lower-triangular)",
        "cells": CELLS,
        "reactive_first_answer_seconds": reactive_seconds,
        "preplanned_first_answer_seconds": preplanned_seconds,
        "first_answer_speedup": reactive_seconds / max(preplanned_seconds, 1e-9),
        "preplan_seconds": preplan_seconds,
        "prewarmed_plans": prewarmed,
        "reactive_plans_built": reactive_built,
        "request_plans_built": request_builds,
        "answers_equal": True,  # np.testing above raised otherwise
        "expected_workload_error": preplanned.expected_error,
        "reactive_expected_workload_error": reactive.expected_error,
        "forecast_hits": forecast_stats["hits"],
        "forecast_misses": forecast_stats["misses"],
    }
    if not QUICK:
        report = {}
        if RESULT_PATH.exists():
            report = json.loads(RESULT_PATH.read_text())
        report["engine_forecast"] = section
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return section


def run(worker_counts=WORKER_COUNTS) -> dict:
    planner = Planner()
    workload = _prefix_workload(CELLS)
    # One cold optimization up front; every swept request must then hit.
    cold_started = time.perf_counter()
    planner.plan(workload, PrivacyParams(REQUEST_EPSILON, TENANT_BUDGET.delta))
    cold_seconds = time.perf_counter() - cold_started

    rows = [
        _throughput_row(workers, planner, workload, execution)
        for execution in ("thread", "process")
        for workers in worker_counts
    ]
    baseline = rows[0]  # the 1-worker thread row
    for row in rows:
        row["paid_speedup_vs_1"] = (
            row["paid_answers_per_sec"] / baseline["paid_answers_per_sec"]
        )
        row["reuse_speedup_vs_1"] = (
            row["reuse_answers_per_sec"] / baseline["reuse_answers_per_sec"]
        )

    section = {
        "workload": f"1-D prefix ranges ({CELLS} x {CELLS} lower-triangular)",
        "cells": CELLS,
        "cpu_count": os.cpu_count(),
        "cold_plan_seconds": cold_seconds,
        "plans_built": planner.plans_built,
        "repeats": REPEATS,
        "rows": rows,
        "coalescing": _coalescing_burst(planner, workload),
    }
    if not QUICK:
        report = {}
        if RESULT_PATH.exists():
            report = json.loads(RESULT_PATH.read_text())
        report["engine_throughput"] = section
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return section


def test_engine_store():
    """Durable-tier overheads: warm reboots skip optimization, the ledger
    costs well under 10% of a paid answer."""
    section = run_store()
    assert section["warm_plans_built"] == 0, (
        "a warm reboot must never rerun strategy optimization: "
        f"{section['warm_plans_built']} cold builds"
    )
    assert section["plans_warmed"] >= 1
    assert section["ledger_overhead_fraction"] < 0.10, (
        "the write-ahead ledger must stay under 10% of a paid answer: "
        f"{section['ledger_overhead_fraction']:.3f}"
    )


def test_engine_forecast():
    """A correct forecast beats the reactive cold start without touching the
    answer: zero builds at request time, bit-for-bit equality, lower first-
    answer latency."""
    section = run_forecast()
    assert section["request_plans_built"] == 0, (
        "a correctly-forecast request must never build cold: "
        f"{section['request_plans_built']} builds"
    )
    assert section["answers_equal"]
    assert (
        section["expected_workload_error"]
        == section["reactive_expected_workload_error"]
    )
    assert section["forecast_hits"] == 1 and section["forecast_misses"] == 0
    assert (
        section["preplanned_first_answer_seconds"]
        < section["reactive_first_answer_seconds"]
    ), (
        "pre-planned first answer must beat the reactive cold start: "
        f"{section['preplanned_first_answer_seconds']:.4f}s vs "
        f"{section['reactive_first_answer_seconds']:.4f}s"
    )


def test_engine_throughput():
    """Consistency always; the 4-worker speedup bars only on >= 4 cores."""
    section = run()
    assert section["plans_built"] == 1, "the sweep must never re-optimize"
    for row in section["rows"]:
        # Every paid request hit the warm plan cache...
        assert row["plan_cache_hit_rate"] == 1.0
        # ...and no tenant budget was oversubscribed.
        assert row["max_spent_epsilon"] <= TENANT_BUDGET.epsilon + 1e-9
    burst = section["coalescing"]
    assert burst["charges"] == 1 and burst["releases"] == 1
    assert burst["leaders"] + burst["followers"] <= burst["burst"]
    by_row = {(row["execution"], row["workers"]): row for row in section["rows"]}
    cores = os.cpu_count() or 1
    if ("thread", 4) in by_row and cores >= 4:
        assert by_row[("thread", 4)]["reuse_speedup_vs_1"] >= 2.0, (
            "4 workers must at least double warm-path answers/sec on >= 4 cores: "
            f"{by_row[('thread', 4)]}"
        )
    if ("process", 4) in by_row and cores >= 4:
        assert by_row[("process", 4)]["paid_speedup_vs_1"] >= 2.0, (
            "4 worker processes must at least double paid answers/sec on "
            f">= 4 cores: {by_row[('process', 4)]}"
        )


def _parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep (1, N) instead of the default worker ladder",
    )
    return parser.parse_args()


if __name__ == "__main__":
    arguments = _parse_args()
    counts = WORKER_COUNTS
    if arguments.workers is not None:
        counts = tuple(sorted({1, max(1, arguments.workers)}))
    section = run(counts)
    print(json.dumps(section, indent=2))
    store_section = run_store()
    print(json.dumps(store_section, indent=2))
    forecast_section = run_forecast()
    print(json.dumps(forecast_section, indent=2))
    if not QUICK:
        print(
            "\n[engine_throughput + engine_store + engine_forecast sections "
            f"written into {RESULT_PATH}]"
        )
