"""Serving-throughput benchmark: sessions x threads over one shared engine.

Measures what the serving layer (``repro.engine.server``) is for: answers
per second from a pool of concurrent tenants sharing one planner and one
content-addressed plan cache, swept over worker counts.  Two paths:

* **paid** — every request runs the full warm pipeline: plan-cache hit
  (strategy optimization skipped), mechanism run (noise + inference, numpy
  releasing the GIL), atomic budget charge.  Requests bring their own data
  vector so each one genuinely executes instead of reusing a release.
* **reuse** — each tenant pays once, then hammers requests served from the
  released estimate: the per-request work is exactly the shard-parallel
  ``W @ x_hat`` derivation, the hot path of a warm dashboard.

Emits an ``engine_throughput`` section into ``BENCH_kron_fastpath.json``
(read-modify-write: the other sections are preserved) with one row per
worker count: answers/sec on both paths, the plan-cache hit rate, and the
speedup over the single-worker row.  ``cpu_count`` is recorded alongside —
thread scaling is physically bounded by it, so the accompanying test only
asserts the >= 2x four-worker speedup when four cores exist.

BLAS pools are pinned to one thread (before numpy loads) so the sweep
measures *engine* concurrency, not the BLAS library's internal pool — when
run under pytest numpy may already be loaded and the pin is best-effort.

Run with:  python benchmarks/bench_engine_throughput.py
Set ``REPRO_BENCH_QUICK=1`` for a CI smoke run (small domain, fewer worker
counts, JSON not rewritten).
"""

from __future__ import annotations

import os

for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")

import json
import time
from pathlib import Path

import numpy as np

from repro.core.privacy import PrivacyParams
from repro.core.workload import Workload
from repro.engine import Planner, Server

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Domain size: big enough that one request is dominated by GIL-releasing
#: numpy work (matvecs, the cached least-squares solve), small enough that
#: the full sweep stays in seconds.
CELLS = 256 if QUICK else 2048

#: Worker counts swept (the 1-worker row is the speedup baseline).
WORKER_COUNTS = (1, 2) if QUICK else (1, 2, 4)

#: Tenants sharing the server and requests per phase.
TENANTS = 4 if QUICK else 8
PAID_REQUESTS = 8 if QUICK else 48
REUSE_REQUESTS = 16 if QUICK else 96

#: Ample per-tenant budget: throughput, not budget exhaustion, is measured.
TENANT_BUDGET = PrivacyParams(epsilon=1e6, delta=1e-4)
REQUEST_EPSILON = 1.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kron_fastpath.json"


def _prefix_workload(cells: int) -> Workload:
    """All 1-D prefix ranges: an ``n x n`` lower-triangular query matrix."""
    return Workload(np.tril(np.ones((cells, cells))), name=f"prefix-{cells}")


def _data_vector(cells: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 50, size=cells).astype(float)


def _measure(run, count: int) -> float:
    started = time.perf_counter()
    run()
    return count / max(time.perf_counter() - started, 1e-9)


def _throughput_row(workers: int, planner: Planner, workload: Workload) -> dict:
    data = _data_vector(CELLS)
    server = Server(
        TENANT_BUDGET,
        data=data,
        planner=planner,
        workers=workers,
        shard_min_rows=512,
        random_state=0,
    )
    tenants = [f"tenant-{i}" for i in range(TENANTS)]
    for tenant in tenants:
        server.open_session(tenant)
    hits_before = planner.cache.hits
    lookups_before = planner.cache.hits + planner.cache.misses

    # Paid path: per-request data => every request executes the mechanism.
    paid = [
        (tenants[i % TENANTS], workload, {"epsilon": REQUEST_EPSILON, "data": data})
        for i in range(PAID_REQUESTS)
    ]
    paid_per_sec = _measure(lambda: server.ask_many(paid), PAID_REQUESTS)
    hit_rate = (planner.cache.hits - hits_before) / max(
        planner.cache.hits + planner.cache.misses - lookups_before, 1
    )

    # Reuse path: one paid release per tenant, then free derived answers.
    for tenant in tenants:
        server.ask(tenant, workload, epsilon=REQUEST_EPSILON)
    reuse = [(tenants[i % TENANTS], workload, {}) for i in range(REUSE_REQUESTS)]
    answers = server.ask_many(reuse)
    assert all(a.served_from_release for a in answers), "reuse path must be free"
    reuse_per_sec = _measure(lambda: server.ask_many(reuse), REUSE_REQUESTS)

    stats = server.stats()
    server.close()
    return {
        "workers": workers,
        "tenants": TENANTS,
        "paid_requests": PAID_REQUESTS,
        "reuse_requests": REUSE_REQUESTS,
        "paid_answers_per_sec": paid_per_sec,
        "reuse_answers_per_sec": reuse_per_sec,
        "plan_cache_hit_rate": hit_rate,
        "max_spent_epsilon": max(
            entry["epsilon"] for entry in stats["spent"].values()
        ),
    }


def run() -> dict:
    planner = Planner()
    workload = _prefix_workload(CELLS)
    # One cold optimization up front; every swept request must then hit.
    cold_started = time.perf_counter()
    planner.plan(workload, PrivacyParams(REQUEST_EPSILON, TENANT_BUDGET.delta))
    cold_seconds = time.perf_counter() - cold_started

    rows = [_throughput_row(workers, planner, workload) for workers in WORKER_COUNTS]
    baseline = rows[0]
    for row in rows:
        row["paid_speedup_vs_1"] = (
            row["paid_answers_per_sec"] / baseline["paid_answers_per_sec"]
        )
        row["reuse_speedup_vs_1"] = (
            row["reuse_answers_per_sec"] / baseline["reuse_answers_per_sec"]
        )

    section = {
        "workload": f"1-D prefix ranges ({CELLS} x {CELLS} lower-triangular)",
        "cells": CELLS,
        "cpu_count": os.cpu_count(),
        "cold_plan_seconds": cold_seconds,
        "plans_built": planner.plans_built,
        "rows": rows,
    }
    if not QUICK:
        report = {}
        if RESULT_PATH.exists():
            report = json.loads(RESULT_PATH.read_text())
        report["engine_throughput"] = section
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return section


def test_engine_throughput():
    """Warm-path consistency always; the 4-worker >= 2x bar on >= 4 cores."""
    section = run()
    assert section["plans_built"] == 1, "the sweep must never re-optimize"
    for row in section["rows"]:
        # Every paid request hit the warm plan cache...
        assert row["plan_cache_hit_rate"] == 1.0
        # ...and no tenant budget was oversubscribed.
        assert row["max_spent_epsilon"] <= TENANT_BUDGET.epsilon + 1e-9
    by_workers = {row["workers"]: row for row in section["rows"]}
    cores = os.cpu_count() or 1
    if 4 in by_workers and cores >= 4:
        assert by_workers[4]["reuse_speedup_vs_1"] >= 2.0, (
            "4 workers must at least double warm-path answers/sec on >= 4 cores: "
            f"{by_workers[4]}"
        )


if __name__ == "__main__":
    section = run()
    print(json.dumps(section, indent=2))
    if not QUICK:
        print(f"\n[engine_throughput section written into {RESULT_PATH}]")
