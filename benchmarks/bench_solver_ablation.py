"""A1 — ablation: weighting-solver backends (not in the paper).

DESIGN.md substitutes the paper's commercial SDP solver (cvxopt/DSDP) with
custom dual solvers; this benchmark verifies the substitution by comparing the
backends' solution quality and speed on the eigen-design weighting problem for
a representative workload, and times the end-to-end eigen design.
"""

from __future__ import annotations

import time

import pytest

from repro.core.eigen_design import eigen_queries
from repro.evaluation import format_table
from repro.optimize import WeightingProblem, solve_dual_ascent, solve_dual_newton, solve_scipy
from repro.workloads import all_range_queries_1d

from _util import PAPER_SCALE, emit

CELLS = 512 if PAPER_SCALE else 128
BACKENDS = {
    "dual-ascent": solve_dual_ascent,
    "dual-newton": solve_dual_newton,
    "scipy-slsqp": solve_scipy,
}


@pytest.fixture(scope="module")
def problem() -> WeightingProblem:
    workload = all_range_queries_1d(CELLS)
    values, queries = eigen_queries(workload)
    return WeightingProblem(costs=values, constraints=(queries**2).T)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_solver_backend(benchmark, problem, backend):
    solution = benchmark(lambda: BACKENDS[backend](problem))
    assert problem.max_violation(solution.weights) <= 1e-7


def test_solver_ablation_summary(benchmark, problem):
    def run():
        rows = []
        for name, backend in BACKENDS.items():
            start = time.perf_counter()
            solution = backend(problem)
            rows.append(
                {
                    "backend": name,
                    "objective": solution.objective_value,
                    "relative gap": solution.relative_gap,
                    "iterations": solution.iterations,
                    "seconds": time.perf_counter() - start,
                    "converged": solution.converged,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "solver_ablation",
        format_table(
            rows,
            precision=4,
            title=f"A1: weighting-solver backends on the all-range[{CELLS}] eigen problem",
        ),
    )
    # The custom dual solvers must agree tightly; the SLSQP reference is only
    # required to agree when it converges (it is documented as a small-problem
    # reference and stalls on larger instances).
    converged = [row["objective"] for row in rows if row["converged"]]
    assert len(converged) >= 2
    assert max(converged) <= min(converged) * 1.01
    best = min(row["objective"] for row in rows)
    for row in rows:
        if not row["converged"]:
            assert row["objective"] >= best * 0.999  # a stalled backend never "wins" by violating constraints
