"""E4 — Fig. 3(c): absolute workload error on marginal workloads.

The paper fixes 2048 cells and compares Fourier, DataCube and the Eigen
design (plus the lower bound) on (i) all 2-way marginals and (ii) random
marginal workloads, over the shapes [16x16x8], [8x8x8x4] and [2^11].  The
reduced default uses 256-cell shapes; ``REPRO_PAPER_SCALE=1`` restores the
paper's shapes.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro import Workload, eigen_design, expected_workload_error, minimum_error_bound
from repro.domain import Domain
from repro.evaluation import format_table
from repro.strategies import datacube_strategy, fourier_strategy
from repro.workloads import kway_marginals, marginal_attribute_sets, marginal_workload

from _util import PAPER_SCALE, emit

SHAPES = (
    [[16, 16, 8], [8, 8, 8, 4], [2] * 11]
    if PAPER_SCALE
    else [[16, 16], [8, 8, 4], [4, 4, 4, 4]]
)
RANDOM_MARGINAL_COUNT = 16


def _random_marginal_sets(domain: Domain, count: int, seed: int) -> list[tuple[int, ...]]:
    """Sample attribute subsets the way the paper's random-marginal workloads do."""
    rng = np.random.default_rng(seed)
    sets = []
    for _ in range(count):
        order = int(rng.integers(1, domain.dimensions + 1))
        sets.append(tuple(sorted(rng.choice(domain.dimensions, size=order, replace=False).tolist())))
    return sets


def _rows(kind, privacy):
    rows = []
    for dims in SHAPES:
        domain = Domain(dims)
        if kind == "2-way":
            workload = kway_marginals(domain, 2)
            marginal_sets = marginal_attribute_sets(domain, 2)
        else:
            marginal_sets = _random_marginal_sets(domain, RANDOM_MARGINAL_COUNT, seed=0)
            workload = Workload.union(
                [marginal_workload(domain, list(attrs)) for attrs in marginal_sets],
                name=f"random-marginal{dims}",
            )
        strategies = {
            "fourier": fourier_strategy(domain, marginal_sets),
            "datacube": datacube_strategy(domain, marginal_sets),
            "eigen-design": eigen_design(workload).strategy,
        }
        bound = minimum_error_bound(workload, privacy)
        errors = {
            name: expected_workload_error(workload, strategy, privacy)
            for name, strategy in strategies.items()
        }
        best = min(errors["fourier"], errors["datacube"])
        rows.append(
            {
                "shape": "x".join(str(d) for d in dims),
                "fourier": errors["fourier"],
                "datacube": errors["datacube"],
                "eigen": errors["eigen-design"],
                "lower bound": bound,
                "best/eigen": best / errors["eigen-design"],
                "eigen/bound": errors["eigen-design"] / bound,
            }
        )
    return rows


@pytest.mark.parametrize("kind", ["2-way", "random"])
def test_fig3c_marginal_workloads(benchmark, privacy, kind):
    rows = benchmark.pedantic(lambda: _rows(kind, privacy), rounds=1, iterations=1)
    emit(
        f"fig3c_{kind}_marginals",
        format_table(
            rows,
            precision=3,
            title=(
                f"E4 (Fig. 3c, {kind} marginals): workload error by domain shape "
                f"({'paper scale' if PAPER_SCALE else 'reduced scale'})"
            ),
        ),
    )
    for row in rows:
        # Paper: eigen design improves by 1.3x-2.2x and matches the bound.  At
        # the reduced default scale the Fourier/DataCube strategies can tie or
        # edge ahead by a couple of percent on the smallest shapes, so the
        # check allows a 5% margin while still requiring near-optimality.
        assert row["best/eigen"] >= 0.95
        assert row["eigen/bound"] < 1.1
