"""E7 — Fig. 4: quality / time trade-off of the Sec. 4 performance optimisations.

The paper sweeps the group size of eigen-query separation and the fraction of
principal vectors on 8192-cell workloads (all 1-D ranges and all 2-D
marginals), plotting workload error against execution time.  The default here
uses 1024 cells (``REPRO_PAPER_SCALE=1`` raises it); error baselines (lower
bound and the best competing fixed strategy) are printed alongside, exactly as
in the figure.

Note on expectations: the paper's full eigen design solves an O(n^4) SDP, so
its reductions buy two orders of magnitude.  Our from-scratch first-order
solver is already fast at these sizes, so the time column mainly demonstrates
that the reductions do not *cost* time while staying within a few percent of
the full design's error (the error column reproduces the figure's shape).
"""

from __future__ import annotations

import time

import pytest

from repro import (
    eigen_design,
    eigen_query_separation,
    expected_workload_error,
    minimum_error_bound,
    principal_vectors,
)
from repro.evaluation import format_table
from repro.strategies import datacube_strategy, wavelet_strategy
from repro.workloads import all_range_queries_1d, kway_marginals, marginal_attribute_sets

from _util import PAPER_SCALE, emit

RANGE_CELLS = 4096 if PAPER_SCALE else 512
MARGINAL_DIMS = [32, 16, 16] if PAPER_SCALE else [8, 8, 8]
GROUP_SIZES = (4, 16, 64, 256) if PAPER_SCALE else (8, 32, 128)
FRACTIONS = (0.25, 0.13, 0.06, 0.03)


def _sweep(workload, privacy):
    rows = []

    start = time.perf_counter()
    full = eigen_design(workload)
    rows.append(
        {
            "method": "full eigen design",
            "parameter": "-",
            "error": expected_workload_error(workload, full.strategy, privacy),
            "seconds": time.perf_counter() - start,
        }
    )
    for group_size in GROUP_SIZES:
        start = time.perf_counter()
        result = eigen_query_separation(workload, group_size=group_size)
        rows.append(
            {
                "method": "eigen separation",
                "parameter": f"group={group_size}",
                "error": expected_workload_error(workload, result.strategy, privacy),
                "seconds": time.perf_counter() - start,
            }
        )
    for fraction in FRACTIONS:
        start = time.perf_counter()
        result = principal_vectors(workload, fraction=fraction)
        rows.append(
            {
                "method": "principal vectors",
                "parameter": f"{int(round(fraction * 100))}%",
                "error": expected_workload_error(workload, result.strategy, privacy),
                "seconds": time.perf_counter() - start,
            }
        )
    return rows


@pytest.mark.parametrize("case", ["1d-ranges", "2d-marginals"])
def test_fig4_performance_optimizations(benchmark, privacy, case):
    if case == "1d-ranges":
        workload = all_range_queries_1d(RANGE_CELLS)
        competitor = ("wavelet", wavelet_strategy(RANGE_CELLS))
    else:
        workload = kway_marginals(MARGINAL_DIMS, 2)
        competitor = (
            "datacube",
            datacube_strategy(MARGINAL_DIMS, marginal_attribute_sets(MARGINAL_DIMS, 2)),
        )

    rows = benchmark.pedantic(lambda: _sweep(workload, privacy), rounds=1, iterations=1)
    bound = minimum_error_bound(workload, privacy)
    competitor_error = expected_workload_error(workload, competitor[1], privacy)
    footer = [
        {"method": "lower bound", "parameter": "-", "error": bound, "seconds": 0.0},
        {"method": competitor[0], "parameter": "-", "error": competitor_error, "seconds": 0.0},
    ]
    emit(
        f"fig4_{case}",
        format_table(
            rows + footer,
            precision=3,
            title=f"E7 (Fig. 4, {case}): approximation quality vs execution time",
        ),
    )

    full_error = rows[0]["error"]
    reduced_errors = [row["error"] for row in rows[1:]]
    # Paper: the reduced methods remain significantly better than the
    # competing fixed strategy; at reduced scale the best reduced variant
    # still beats the competitor outright and every variant stays close.
    assert min(reduced_errors) < competitor_error
    for row in rows:
        # Every variant stays above the lower bound (up to the ~0.5% numerical
        # slack of the rank-truncated error evaluation on low-rank marginal
        # workloads) and within a modest factor of the competitor.
        assert row["error"] >= bound * 0.99
        assert row["error"] < competitor_error * 1.15
        # The paper's ~12% quality envelope is only claimed down to ~6% of the
        # eigenvectors (its smallest reported fraction with that property); the
        # tiniest fraction keeps too few vectors at reduced scale, so it is
        # exempt from the envelope check.
        if row["method"] == "principal vectors" and row["parameter"] in ("3%", "2%"):
            continue
        assert row["error"] <= full_error * 1.15
