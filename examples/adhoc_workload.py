"""Ad-hoc workloads: combining queries from several users and permuted domains.

This is the setting where the paper's adaptive mechanism shines (Table 2):
nobody designed a basis for *this* workload.  Three analysts contribute
different query sets over the same 256-cell categorical domain whose cell
order carries no locality (so wavelet/hierarchical strategies lose their
structural advantage), and a single strategy must serve all of them.

Run with:  python examples/adhoc_workload.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyParams, eigen_design, expected_workload_error, minimum_error_bound, per_query_error
from repro.evaluation import compare_strategies, format_comparison
from repro.strategies import hierarchical_strategy, identity_strategy, wavelet_strategy
from repro.workloads import (
    cdf_workload,
    permuted_workload,
    random_predicate_queries,
    random_range_queries,
    weighted_union,
)

CELLS = 256


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)

    # Analyst A: 150 range queries, but over a permuted (non-local) cell order.
    analyst_a = permuted_workload(
        random_range_queries([CELLS], 150, random_state=1), random_state=2
    )
    # Analyst B: an empirical CDF over the first 64 categories, embedded in the
    # full domain by padding with zero columns.
    cdf = cdf_workload(64).matrix
    analyst_b_matrix = np.hstack([cdf, np.zeros((64, CELLS - 64))])
    from repro import Workload

    analyst_b = Workload(analyst_b_matrix, name="cdf-on-subdomain")
    # Analyst C: 100 arbitrary predicate (group-by style) queries.
    analyst_c = random_predicate_queries(CELLS, 100, random_state=3)

    # Analyst B's queries are twice as important to the organisation.
    workload = weighted_union(
        [analyst_a, analyst_b, analyst_c], [1.0, 2.0, 1.0], name="three-analysts"
    )
    print(f"Combined workload: {workload.query_count} queries over {CELLS} cells")

    design = eigen_design(workload)
    comparison = compare_strategies(
        workload,
        {
            "identity": identity_strategy(CELLS),
            "wavelet": wavelet_strategy(CELLS),
            "hierarchical": hierarchical_strategy(CELLS),
            "eigen-design": design.strategy,
        },
        privacy,
    )
    print()
    print(format_comparison(comparison))
    print(f"\nLower bound: {minimum_error_bound(workload, privacy):.3f}")
    print(
        "Ratio of eigen-design error to the lower bound: "
        f"{comparison.ratio_to_bound('eigen-design'):.3f}"
    )

    # Per-analyst view: how does each analyst fare under the shared strategy?
    for name, part in (("analyst A", analyst_a), ("analyst B", analyst_b), ("analyst C", analyst_c)):
        errors = per_query_error(part, design.strategy, privacy)
        print(
            f"  {name}: mean per-query error {errors.mean():7.2f}  "
            f"(worst query {errors.max():7.2f})"
        )
    print(
        "  (for comparison, answering each analyst separately with the identity strategy: "
        f"{expected_workload_error(analyst_a, identity_strategy(CELLS), privacy):.2f} / "
        f"{expected_workload_error(analyst_b, identity_strategy(CELLS), privacy):.2f} / "
        f"{expected_workload_error(analyst_c, identity_strategy(CELLS), privacy):.2f})"
    )


if __name__ == "__main__":
    main()
