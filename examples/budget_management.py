"""Managing a privacy budget across repeated matrix-mechanism releases.

The paper answers one batch workload with the whole budget.  Deployments
usually release statistics repeatedly (one release per month, or one per
analyst team), and the cumulative guarantee must be accounted for.  This
example shows:

1. splitting an overall (epsilon, delta) budget across releases with the
   simple sequential accountant;
2. how much tighter zero-concentrated (zCDP) accounting is for a sequence of
   Gaussian-mechanism releases;
3. how the extra noise of smaller per-release budgets shows up in the
   expected workload error.

Run with:  python examples/budget_management.py
"""

from __future__ import annotations

import time

from repro import PrivacyParams, eigen_design, expected_workload_error
from repro.evaluation import format_table
from repro.mechanisms import CompositionAccountant, PrivacyAccountant
from repro.workloads import all_range_queries, all_range_queries_1d, kway_marginals


def main() -> None:
    overall_budget = PrivacyParams(epsilon=1.0, delta=1e-4)
    releases = 4
    per_release = overall_budget.split(releases)
    print(
        f"Overall budget: epsilon={overall_budget.epsilon}, delta={overall_budget.delta}; "
        f"{releases} planned releases -> per release epsilon={per_release.epsilon}, "
        f"delta={per_release.delta:g}"
    )

    # 1. The sequential accountant refuses to overspend.
    accountant = PrivacyAccountant(budget=overall_budget)
    for index in range(releases):
        accountant.spend(per_release, label=f"release-{index + 1}")
    print(
        f"Sequential accountant after {releases} releases: spent epsilon="
        f"{accountant.spent_epsilon:.3f}, remaining={accountant.remaining}"
    )

    # 2. zCDP accounting of the same four Gaussian releases is tighter.
    composition = CompositionAccountant(target_delta=overall_budget.delta)
    for _ in range(releases):
        composition.record(per_release)
    rows = [
        {
            "accounting": "basic (epsilons add)",
            "epsilon": composition.basic().epsilon,
            "delta": composition.basic().delta,
        },
        {
            "accounting": "advanced composition",
            "epsilon": composition.advanced().epsilon,
            "delta": composition.advanced().delta,
        },
        {
            "accounting": "zCDP conversion",
            "epsilon": composition.as_approx_dp().epsilon,
            "delta": overall_budget.delta,
        },
    ]
    print()
    print(format_table(rows, precision=4, title="Cumulative guarantee of the 4 releases"))

    # 3. The error cost of splitting the budget.  Note that evaluating the
    # same strategy under several budgets re-evaluates one error trace many
    # times; on large factorized domains the trace machinery recycles its
    # Krylov information across those evaluations, so only the first one
    # pays the full iteration count (see docs/performance.md).
    workloads = {
        "all 1-D ranges (256 cells)": all_range_queries_1d(256),
        "2-way marginals (8x8x8)": kway_marginals([8, 8, 8], 2),
    }
    rows = []
    for label, workload in workloads.items():
        strategy = eigen_design(workload).strategy
        rows.append(
            {
                "workload": label,
                "error with full budget": expected_workload_error(workload, strategy, overall_budget),
                "error with 1/4 budget": expected_workload_error(workload, strategy, per_release),
            }
        )
    print()
    print(format_table(rows, precision=2, title="Expected RMSE: whole budget vs one of four releases"))
    print(
        "\nSplitting the budget four ways multiplies the per-release noise scale by 4 "
        "(the error is proportional to 1/epsilon), which is why the paper advocates "
        "batching every query of interest into a single workload."
    )

    # 4. The same scan at production scale (n = 4096, beyond the dense
    # budget): the first evaluation runs the stochastic trace cold, every
    # further budget candidate reuses its recycled Krylov state.
    workload = all_range_queries([16, 16, 16])
    strategy = eigen_design(workload).strategy
    timings = []
    for splits in (1, 2, 4, 8):
        budget = overall_budget.split(splits)
        start = time.perf_counter()
        error = expected_workload_error(workload, strategy, budget)
        timings.append(
            {
                "releases": splits,
                "per-release error": error,
                "evaluation seconds": time.perf_counter() - start,
            }
        )
    print()
    print(
        format_table(
            timings,
            precision=3,
            title="Budget scan at n=4096: the first trace is cold, the rest recycle",
        )
    )


if __name__ == "__main__":
    main()
