"""Certifying how close the eigen design gets to the optimal strategy.

The paper argues (Sec. 3.4, Sec. 5.1) that the Eigen-Design algorithm is
near-optimal: its error is within a small factor of the singular-value lower
bound (Thm. 2), and for marginal workloads it matches the bound.  The bound,
however, is not always achievable, so a tighter reference is useful.  This
example uses the direct Gram-matrix solver (the small-domain OptStrat(W)
reference from ``repro.optimize.exact_gram``) to certify, for several
workloads:

* the gap between the eigen design and the best strategy the reference solver
  can find, and
* the gap between both and the Thm. 2 lower bound,

including the CDF workload, the one case in the paper's evaluation where the
eigen basis is *not* the best choice (Sec. 5.4).

Run with:  python examples/certifying_optimality.py
"""

from __future__ import annotations

from repro import PrivacyParams, eigen_design, expected_workload_error, minimum_error_bound
from repro.evaluation import bar_chart, format_table
from repro.optimize import optimal_gram_strategy
from repro.workloads import (
    all_range_queries_1d,
    cdf_workload,
    example_workload,
    kway_marginals,
    permuted_workload,
)


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)
    workloads = {
        "Fig. 1 example (8 cells)": example_workload(),
        "all 1-D ranges (64 cells)": all_range_queries_1d(64),
        "permuted 1-D ranges (64 cells)": permuted_workload(
            all_range_queries_1d(64), random_state=0
        ),
        "2-way marginals (4x4x4)": kway_marginals([4, 4, 4], 2),
        "1-D CDF (64 cells)": cdf_workload(64),
    }

    rows = []
    for label, workload in workloads.items():
        eigen = eigen_design(workload).strategy
        reference = optimal_gram_strategy(workload).strategy
        eigen_error = expected_workload_error(workload, eigen, privacy)
        reference_error = expected_workload_error(workload, reference, privacy)
        bound = minimum_error_bound(workload, privacy)
        rows.append(
            {
                "workload": label,
                "eigen design": eigen_error,
                "gram reference": reference_error,
                "lower bound": bound,
                "eigen / reference": eigen_error / reference_error,
                "eigen / bound": eigen_error / bound,
            }
        )

    print(format_table(rows, precision=3, title="Certifying near-optimality of the eigen design"))
    print()
    print(
        bar_chart(
            [row["workload"] for row in rows],
            [row["eigen / reference"] for row in rows],
            title="Eigen-design error relative to the strongest reference strategy (1.0 = optimal)",
            width=40,
        )
    )
    print(
        "\nThe eigen design is within a few percent of the reference everywhere except "
        "the highly skewed CDF workload, matching the paper's own caveat that the CDF "
        "workload is the one case where an alternative basis wins (Sec. 5.4)."
    )


if __name__ == "__main__":
    main()
