"""Quickstart: answer a workload of range queries under (epsilon, delta)-DP.

This example walks through the full pipeline on a small 1-D domain:

1. build a workload (all range queries over 64 ordered buckets);
2. run the Eigen-Design algorithm to obtain an adapted strategy;
3. compare its expected error against the classic baselines;
4. run the matrix mechanism on a synthetic dataset and inspect the answers.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MatrixMechanism,
    PrivacyParams,
    eigen_design,
    expected_workload_error,
    minimum_error_bound,
)
from repro.datasets import zipf_dataset
from repro.evaluation import compare_strategies, format_comparison
from repro.strategies import hierarchical_strategy, identity_strategy, wavelet_strategy
from repro.workloads import all_range_queries_1d


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)
    domain_size = 64

    # 1. The workload: every contiguous range query over 64 ordered buckets.
    workload = all_range_queries_1d(domain_size)
    print(f"Workload: {workload.query_count} range queries over {domain_size} cells")

    # 2. Adapt a strategy to the workload (Program 2 of the paper).
    design = eigen_design(workload)
    print(
        f"Eigen design solved in {design.solution.iterations} solver iterations "
        f"(relative duality gap {design.solution.relative_gap:.1e})"
    )

    # 3. Expected (data-independent) error comparison.
    comparison = compare_strategies(
        workload,
        {
            "identity": identity_strategy(domain_size),
            "wavelet": wavelet_strategy(domain_size),
            "hierarchical": hierarchical_strategy(domain_size),
            "eigen-design": design.strategy,
        },
        privacy,
    )
    print()
    print(format_comparison(comparison))
    print(f"\nLower bound on any strategy's error: {minimum_error_bound(workload, privacy):.3f}")

    # 4. Run the mechanism on data: a skewed synthetic histogram.
    dataset = zipf_dataset(shape=(domain_size,), total=100_000, random_state=0)
    mechanism = MatrixMechanism(design.strategy, privacy)
    result = mechanism.run(workload, dataset.data, random_state=1)

    true_answers = workload.answer(dataset.data)
    observed_rmse = float(np.sqrt(np.mean((result.answers - true_answers) ** 2)))
    print(f"\nOne mechanism run on a {int(dataset.total)}-tuple dataset:")
    print(f"  expected RMSE (Prop. 4):  {expected_workload_error(workload, design.strategy, privacy):8.2f}")
    print(f"  observed RMSE (this run): {observed_rmse:8.2f}")
    print(f"  first five noisy answers: {np.round(result.answers[:5], 1)}")
    print(f"  first five true answers:  {np.round(true_answers[:5], 1)}")


if __name__ == "__main__":
    main()
