"""Census scenario: multi-dimensional range queries with relative-error tuning.

Reproduces the workflow behind the paper's Fig. 3(b): an analyst wants range
statistics over a census-style table (age x occupation x income, 8 x 16 x 16
cells).  Because the analyst cares about *relative* error, the strategy is
optimised for the row-normalised workload (the heuristic of Sec. 3.4) and then
evaluated by Monte-Carlo relative error against wavelet and hierarchical
baselines.

Run with:  python examples/census_range_queries.py
"""

from __future__ import annotations

from repro import PrivacyParams, eigen_design
from repro.datasets import census_like
from repro.evaluation import format_table, relative_error
from repro.strategies import hierarchical_strategy, wavelet_strategy
from repro.workloads import random_range_queries


def main() -> None:
    # A reduced-size census stand-in keeps the example fast; the full-scale
    # 15M-tuple version is exercised by the benchmarks.
    dataset = census_like(total=500_000, random_state=0)
    print(f"Dataset: {dataset.name}, shape {dataset.shape}, {int(dataset.total)} tuples")

    # The analyst's workload: 200 random multi-dimensional range queries.
    workload = random_range_queries(dataset.domain, 200, random_state=7)

    # Optimise for relative error: normalise each query to unit L2 norm before
    # running the eigen design, then answer the *original* workload.
    strategy = eigen_design(workload.normalize_rows()).strategy

    baselines = {
        "eigen-design": strategy,
        "wavelet": wavelet_strategy(dataset.domain),
        "hierarchical": hierarchical_strategy(dataset.domain),
    }

    rows = []
    for epsilon in (0.1, 0.5, 1.0, 2.5):
        privacy = PrivacyParams(epsilon=epsilon, delta=1e-4)
        for name, candidate in baselines.items():
            result = relative_error(
                workload, candidate, dataset, privacy, trials=3, random_state=11
            )
            rows.append(
                {
                    "epsilon": epsilon,
                    "strategy": name,
                    "mean relative error": result.mean_relative_error,
                }
            )
    print()
    print(format_table(rows, precision=4, title="Average relative error on random range queries"))


if __name__ == "__main__":
    main()
