"""Publishing honest error bars alongside a differentially private release.

The matrix mechanism's noise distribution is fully known and data-independent
(Prop. 3), so confidence intervals and accuracy statements can be published
with a release at no extra privacy cost.  This example:

1. answers a marginal workload over a synthetic Adult-like dataset;
2. attaches 95% confidence intervals to every released count;
3. reports the expected worst-case error over the whole release;
4. answers the planning question "what epsilon would I need for +/- 50?".

Run with:  python examples/error_bars.py
"""

from __future__ import annotations

import numpy as np

from repro import MatrixMechanism, PrivacyParams, eigen_design
from repro.analysis import (
    confidence_intervals,
    epsilon_for_target_bound,
    epsilon_for_target_error,
    expected_max_error,
    simultaneous_confidence_radius,
)
from repro.datasets import adult_like
from repro.evaluation import format_table
from repro.workloads import marginal_workload


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)
    dataset = adult_like(random_state=0)

    # The release: the two-way marginal over the first and last attributes.
    workload = marginal_workload(dataset.domain, [0, 3])
    design = eigen_design(workload)
    mechanism = MatrixMechanism(design.strategy, privacy)
    result = mechanism.run(workload, dataset.data, random_state=1)
    truth = workload.answer(dataset.data)

    intervals = confidence_intervals(result.answers, workload, design.strategy, privacy)
    rows = []
    for index in range(min(10, workload.query_count)):
        rows.append(
            {
                "cell": index,
                "true count": truth[index],
                "released": result.answers[index],
                "95% low": intervals[index, 0],
                "95% high": intervals[index, 1],
                "covered": bool(intervals[index, 0] <= truth[index] <= intervals[index, 1]),
            }
        )
    print(format_table(rows, precision=1, title="First 10 released marginal cells with 95% intervals"))

    simultaneous = simultaneous_confidence_radius(workload, design.strategy, privacy)
    print(
        f"\nSimultaneous 95% radius (all {workload.query_count} cells at once): "
        f"up to +/- {simultaneous.max():.1f} tuples"
    )
    print(
        f"Expected maximum absolute error over the release: "
        f"{expected_max_error(workload, design.strategy, privacy):.1f} tuples"
    )

    # Planning: what budget buys +/- 50 tuples RMSE on this workload?
    target = 50.0
    needed = epsilon_for_target_error(workload, design.strategy, target)
    floor = epsilon_for_target_bound(workload, target)
    print(
        f"\nTo reach an expected RMSE of {target:.0f} tuples, this strategy needs "
        f"epsilon = {needed:.3f}; no strategy can do it below epsilon = {floor:.3f} (Thm. 2)."
    )
    coverage = np.mean((intervals[:, 0] <= truth) & (truth <= intervals[:, 1]))
    print(f"Empirical interval coverage in this run: {coverage:.1%}")


if __name__ == "__main__":
    main()
