"""Adult-dataset scenario: low-order marginals and range marginals.

Mirrors the paper's marginal experiments (Fig. 3(c)/(d) and the range-marginal
rows of Table 2) on the Adult-style domain (age x work x education x income,
8 x 8 x 16 x 2 cells): the analyst asks for all 2-way marginals plus the 1-way
*range* marginals (cumulative age/education breakdowns), a combination none of
the fixed-basis methods targets directly.

Run with:  python examples/adult_marginals.py
"""

from __future__ import annotations

from repro import MatrixMechanism, PrivacyParams, eigen_design, minimum_error_bound
from repro.datasets import adult_like
from repro.domain import marginal_counts
from repro.evaluation import compare_strategies, format_comparison
from repro.strategies import (
    datacube_strategy,
    fourier_strategy,
    identity_strategy,
)
from repro.workloads import (
    combine_workloads,
    kway_marginals,
    kway_range_marginals,
    marginal_attribute_sets,
)


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)
    dataset = adult_like(random_state=0)
    domain = dataset.domain
    print(f"Dataset: {dataset.name}, shape {dataset.shape}, {int(dataset.total)} tuples")

    # The analyst's combined workload: all 2-way marginals plus all 1-way
    # range marginals (so cumulative distributions per attribute are accurate).
    marginals = kway_marginals(domain, 2)
    range_marginals = kway_range_marginals(domain, 1)
    workload = combine_workloads([marginals, range_marginals], name="adult-analysis")
    print(f"Workload: {workload.query_count} queries over {domain.size} cells")

    # Competing strategies: Fourier and DataCube target plain marginals only.
    strategies = {
        "identity": identity_strategy(domain),
        "fourier(2-way)": fourier_strategy(domain, 2),
        "datacube(2-way)": datacube_strategy(domain, marginal_attribute_sets(domain, 2)),
        "eigen-design": eigen_design(workload).strategy,
    }
    comparison = compare_strategies(workload, strategies, privacy)
    print()
    print(format_comparison(comparison))
    print(f"\nLower bound: {minimum_error_bound(workload, privacy):.3f}")
    best, _ = comparison.best_competitor("eigen-design")
    print(
        f"Eigen design improves on the best competitor ({best}) by a factor of "
        f"{comparison.improvement_over(best, 'eigen-design'):.2f}"
    )

    # Release a synthetic table and read one marginal off it.
    mechanism = MatrixMechanism(strategies["eigen-design"], privacy)
    result = mechanism.run(workload, dataset.data, random_state=3)
    noisy_age_by_income = marginal_counts(domain, result.estimate, ["age", "income"])
    true_age_by_income = marginal_counts(domain, dataset.data, ["age", "income"])
    print("\nage x income marginal (first 4 cells), true vs private synthetic estimate:")
    for index in range(4):
        print(f"  cell {index}: true {true_age_by_income[index]:9.1f}   private {noisy_age_by_income[index]:9.1f}")


if __name__ == "__main__":
    main()
