"""End-to-end pipeline: raw tuples -> SQL counting queries -> private answers.

The paper's motivating scenario (Fig. 1) starts from a student relation and a
handful of counting queries over gender and GPA.  This example runs that
scenario end to end using the tuple-level substrate:

1. synthesise a student relation (CSV-compatible, tuple-level data);
2. bucket it into a schema and build the data vector of Def. 1;
3. express the analyst's task as SQL counting queries and compile them into a
   workload matrix;
4. adapt a strategy with the Eigen-Design algorithm and answer the workload
   under (epsilon, delta)-differential privacy;
5. compare the private answers with the exact (non-private) SQL answers.

Run with:  python examples/relational_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import MatrixMechanism, PrivacyParams, eigen_design, per_query_error
from repro.domain.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.relational import (
    Relation,
    data_vector,
    parse_counting_query,
    workload_from_sql,
    write_csv_text,
)

#: The analyst's task, written the way an analyst would write it.
QUERIES = [
    "SELECT COUNT(*) FROM students",
    "SELECT COUNT(*) FROM students WHERE gender = 'F'",
    "SELECT COUNT(*) FROM students WHERE gender = 'M'",
    "SELECT COUNT(*) FROM students WHERE gpa < 3.0",
    "SELECT COUNT(*) FROM students WHERE gpa >= 3.0",
    "SELECT COUNT(*) FROM students WHERE gender = 'F' AND gpa >= 3.0",
    "SELECT COUNT(*) FROM students WHERE gender = 'M' AND gpa < 3.0",
    "SELECT COUNT(*) FROM students WHERE gpa BETWEEN 2.0 AND 3.5 GROUP BY gender",
]


def build_students(count: int, seed: int) -> Relation:
    """Synthesise a plausible student relation (the raw, sensitive input)."""
    rng = np.random.default_rng(seed)
    gender = rng.choice(["M", "F"], size=count, p=[0.52, 0.48])
    # GPA is a truncated bimodal mixture so the buckets are unevenly filled.
    gpa = np.where(
        rng.random(count) < 0.6,
        rng.normal(3.1, 0.45, size=count),
        rng.normal(2.2, 0.5, size=count),
    )
    gpa = np.clip(gpa, 1.0, 3.999)
    return Relation({"gender": gender.tolist(), "gpa": gpa}, name="students")


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)

    # 1. The raw relation (first rows shown as CSV to emphasise the data model).
    students = build_students(50_000, seed=7)
    print(f"Relation {students.name!r} with {students.row_count} tuples; sample:")
    print(write_csv_text(students.head(5)))

    # 2. Cell conditions of Fig. 1(a): gender x four GPA ranges.
    schema = Schema(
        [
            CategoricalAttribute("gender", ["M", "F"]),
            NumericAttribute("gpa", [1.0, 2.0, 3.0, 3.5, 4.0]),
        ]
    )
    x = data_vector(students, schema)
    print(f"Data vector over {schema.domain.size} cells: {x.astype(int)}")

    # 3. Compile the SQL task into a workload matrix.
    workload, labels = workload_from_sql(schema, QUERIES, name="student-task")
    print(f"\nWorkload: {workload.query_count} linear queries over {workload.column_count} cells")

    # 4. Adapt the strategy and answer privately.
    design = eigen_design(workload)
    mechanism = MatrixMechanism(design.strategy, privacy)
    result = mechanism.run(workload, x, random_state=0)
    expected = per_query_error(workload, design.strategy, privacy)

    # 5. Compare with the exact SQL answers, evaluated directly on the tuples.
    #    (GROUP BY statements expand to one predicate per group, in the same
    #    order as the compiled workload rows.)
    exact: list[float] = []
    for statement in QUERIES:
        query = parse_counting_query(statement)
        for _, expression in query.expressions(schema):
            exact.append(float(expression.evaluate(students).sum()))

    print(f"\n{'query':55s} {'true':>9s} {'private':>9s} {'exp. rmse':>9s}")
    for label, truth, noisy, rmse in zip(labels, exact, result.answers, expected):
        print(f"{label[:55]:55s} {truth:9.0f} {noisy:9.0f} {rmse:9.1f}")

    print(
        "\nAll private answers derive from one synthetic cell-count estimate, so they are "
        "mutually consistent (e.g. the gender counts sum to the total)."
    )
    total = result.answers[labels.index("SELECT COUNT(*) FROM students")]
    male = result.answers[labels.index("SELECT COUNT(*) FROM students WHERE gender = 'M'")]
    female = result.answers[labels.index("SELECT COUNT(*) FROM students WHERE gender = 'F'")]
    print(f"  total = {total:.1f}  vs  male + female = {male + female:.1f}")


if __name__ == "__main__":
    main()
