"""The query-answering engine: one session, many analysts' requests.

The paper's mechanism is a pipeline — choose a strategy for the workload,
spend privacy budget measuring the strategy queries, infer ``x_hat``, derive
consistent workload answers.  The engine (``repro.engine``) wraps that
pipeline behind a planner, a content-addressed plan cache and a budgeted
session, which is how a production deployment would serve repeated traffic:

1. the first analyst's SQL task pays a *cold plan* (strategy optimization);
2. a second, structurally identical task (tomorrow's refresh of the same
   dashboard) hits the plan cache and skips optimization entirely;
3. follow-up queries inside the released estimate's span are answered at
   **zero marginal budget** (free post-processing);
4. a request that does not fit the remaining budget is refused cleanly —
   before any noise is drawn — and the session stays usable.

Run with:  python examples/query_session.py
"""

from __future__ import annotations

import numpy as np

from repro import BudgetExceededError, Planner, PrivacyParams, Session
from repro.domain.schema import CategoricalAttribute, NumericAttribute, Schema
from repro.relational.vectorize import sample_relation

SCHEMA = Schema(
    [
        CategoricalAttribute("plan", ["free", "pro", "enterprise"]),
        NumericAttribute("tenure", [0.0, 6.0, 12.0, 24.0, 48.0]),
    ]
)

DASHBOARD = [
    "SELECT COUNT(*) FROM accounts",
    "SELECT COUNT(*) FROM accounts GROUP BY plan",
    "SELECT COUNT(*) FROM accounts WHERE tenure BETWEEN 0 AND 12",
]


def main() -> None:
    accounts = sample_relation(SCHEMA, 40_000, random_state=11, name="accounts")
    planner = Planner()  # shared: one plan cache for every session

    # --- Day 1: cold plan -------------------------------------------------
    monday = Session(
        PrivacyParams(1.0, 1e-4), schema=SCHEMA, data=accounts,
        planner=planner, random_state=0,
    )
    first = monday.ask(DASHBOARD, epsilon=0.5, per_query=True)
    print(f"cold plan   : {first.mechanism}, cache hit: {first.plan_cache_hit}")
    for row in first.rows():
        print(f"  {row['query']:45s} {row['answer']:10.0f}  ±{row['expected_rmse']:.0f}")

    # --- Day 2: same dashboard shape, new session -> warm plan ------------
    tuesday = Session(
        PrivacyParams(1.0, 1e-4), schema=SCHEMA, data=accounts,
        planner=planner, random_state=1,
    )
    second = tuesday.ask(DASHBOARD, epsilon=0.5)
    print(
        f"warm plan   : cache hit: {second.plan_cache_hit} "
        f"(strategy optimizations so far: {planner.plans_built})"
    )

    # --- Follow-up inside the released span: free -------------------------
    follow_up = tuesday.ask("SELECT COUNT(*) FROM accounts WHERE plan = 'pro'")
    print(
        f"follow-up   : {follow_up.mechanism}, spent: {follow_up.spent} "
        f"(answer {follow_up.answers[0]:.0f}, consistent with the release)"
    )

    # A completed eigen design is often full rank, so even the 2-way
    # marginal is inside the released span and costs nothing:
    free_marginal = tuesday.ask("SELECT COUNT(*) FROM accounts GROUP BY plan, tenure")
    print(
        f"2-way free  : served_from_release={free_marginal.served_from_release}, "
        f"spent: {free_marginal.spent}"
    )

    # --- Over-budget request: refused cleanly, nothing spent --------------
    wednesday = Session(
        PrivacyParams(0.5, 1e-4), schema=SCHEMA, data=accounts,
        planner=planner, random_state=2,
    )
    try:
        wednesday.ask(DASHBOARD, epsilon=0.8)
    except BudgetExceededError:
        print(
            f"over-budget : refused; spent epsilon stays "
            f"{wednesday.accountant.spent_epsilon} of {wednesday.budget.epsilon}"
        )

    # The batch is mutually consistent: marginal sums equal the total.
    total = first.answers[0]
    by_plan = first.answers[1:4]
    print(f"consistency : total {total:.1f} == sum over plans {by_plan.sum():.1f}")
    assert np.isclose(total, by_plan.sum())


if __name__ == "__main__":
    main()
