"""Performance tuning: the Sec. 4 optimisations on a larger domain.

Shows the trade-off between strategy quality and computation time for the two
workload-reduction approaches (eigen-query separation and principal-vector
optimisation), mirroring the paper's Fig. 4 at a laptop-friendly size.

Run with:  python examples/performance_tuning.py
"""

from __future__ import annotations

import time

from repro import (
    PrivacyParams,
    eigen_design,
    eigen_query_separation,
    expected_workload_error,
    minimum_error_bound,
    principal_vectors,
)
from repro.evaluation import format_table
from repro.strategies import wavelet_strategy
from repro.workloads import all_range_queries_1d

CELLS = 512


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)
    workload = all_range_queries_1d(CELLS)
    bound = minimum_error_bound(workload, privacy)
    wavelet_error = expected_workload_error(workload, wavelet_strategy(CELLS), privacy)
    print(f"All range queries over {CELLS} cells; lower bound {bound:.2f}, wavelet {wavelet_error:.2f}\n")

    rows = []

    start = time.perf_counter()
    full = eigen_design(workload)
    rows.append(
        {
            "method": "full eigen design",
            "parameter": "-",
            "error": expected_workload_error(workload, full.strategy, privacy),
            "seconds": time.perf_counter() - start,
        }
    )

    for group_size in (8, 32, 128):
        start = time.perf_counter()
        result = eigen_query_separation(workload, group_size=group_size)
        rows.append(
            {
                "method": "eigen separation",
                "parameter": f"group={group_size}",
                "error": expected_workload_error(workload, result.strategy, privacy),
                "seconds": time.perf_counter() - start,
            }
        )

    for fraction in (0.25, 0.1, 0.05):
        start = time.perf_counter()
        result = principal_vectors(workload, fraction=fraction)
        rows.append(
            {
                "method": "principal vectors",
                "parameter": f"{int(fraction * 100)}%",
                "error": expected_workload_error(workload, result.strategy, privacy),
                "seconds": time.perf_counter() - start,
            }
        )

    print(format_table(rows, precision=2, title="Quality / speed trade-off (Fig. 4 analogue)"))
    print("\nAll variants stay well below the wavelet baseline.  At this domain size the")
    print("full first-order solve is already fast; the reduction methods pay off on")
    print("larger domains (see benchmarks/bench_fig4_optimizations.py), where the")
    print("principal-vector method trades a few percent of error for a smaller")
    print("optimisation problem, exactly as in the paper's Fig. 4.")


if __name__ == "__main__":
    main()
