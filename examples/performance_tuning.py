"""Performance tuning: the Sec. 4 optimisations on a larger domain.

Shows the trade-off between strategy quality and computation time for the two
workload-reduction approaches (eigen-query separation and principal-vector
optimisation), mirroring the paper's Fig. 4 at a laptop-friendly size — and
then the *factorized Kronecker fast path*, which runs the eigen design on a
multi-dimensional product domain through structured operators: k tiny
per-attribute eigendecompositions instead of one O(n^3) dense one, and no
n x n allocation anywhere (the separation method's stage-2 group columns
included, via the lazy GroupColumnOperator).

The knobs this example exercises — the materialization budgets, the
STOCHASTIC_TRACE estimator controls, the Krylov-recycling switches — are
documented with the measured speedups in docs/performance.md; the dispatch
flowchart behind the auto-switch lives in docs/architecture.md.

Run with:  python examples/performance_tuning.py
"""

from __future__ import annotations

import time

from repro import (
    PrivacyParams,
    eigen_design,
    eigen_query_separation,
    expected_workload_error,
    minimum_error_bound,
    principal_vectors,
)
from repro.evaluation import format_table
from repro.strategies import wavelet_strategy
from repro.workloads import all_range_queries, all_range_queries_1d

CELLS = 512

#: Product domain for the factorized fast path: n = 16 * 16 * 16 = 4096 cells,
#: where the dense n x n Gram already blows the materialization budget.
KRON_SHAPE = (16, 16, 16)


def main() -> None:
    privacy = PrivacyParams(epsilon=0.5, delta=1e-4)
    workload = all_range_queries_1d(CELLS)
    bound = minimum_error_bound(workload, privacy)
    wavelet_error = expected_workload_error(workload, wavelet_strategy(CELLS), privacy)
    print(f"All range queries over {CELLS} cells; lower bound {bound:.2f}, wavelet {wavelet_error:.2f}\n")

    rows = []

    start = time.perf_counter()
    full = eigen_design(workload)
    rows.append(
        {
            "method": "full eigen design",
            "parameter": "-",
            "error": expected_workload_error(workload, full.strategy, privacy),
            "seconds": time.perf_counter() - start,
        }
    )

    for group_size in (8, 32, 128):
        start = time.perf_counter()
        result = eigen_query_separation(workload, group_size=group_size)
        rows.append(
            {
                "method": "eigen separation",
                "parameter": f"group={group_size}",
                "error": expected_workload_error(workload, result.strategy, privacy),
                "seconds": time.perf_counter() - start,
            }
        )

    for fraction in (0.25, 0.1, 0.05):
        start = time.perf_counter()
        result = principal_vectors(workload, fraction=fraction)
        rows.append(
            {
                "method": "principal vectors",
                "parameter": f"{int(fraction * 100)}%",
                "error": expected_workload_error(workload, result.strategy, privacy),
                "seconds": time.perf_counter() - start,
            }
        )

    print(format_table(rows, precision=2, title="Quality / speed trade-off (Fig. 4 analogue)"))
    print("\nAll variants stay well below the wavelet baseline.  At this domain size the")
    print("full first-order solve is already fast; the reduction methods pay off on")
    print("larger domains (see benchmarks/bench_fig4_optimizations.py), where the")
    print("principal-vector method trades a few percent of error for a smaller")
    print("optimisation problem, exactly as in the paper's Fig. 4.")

    # ------------------------------------------------------- factorized fast path
    workload = all_range_queries(KRON_SHAPE)
    n = workload.column_count
    print(f"\nFactorized fast path: all range queries over {'x'.join(map(str, KRON_SHAPE))}")
    print(f"(n = {n} cells, {workload.query_count} queries; the dense n x n Gram")
    print("is never materialised — the workload keeps its Kronecker factors).")
    start = time.perf_counter()
    design = eigen_design(workload)  # complete=True: the paper's default
    seconds = time.perf_counter() - start
    error = expected_workload_error(workload, design.strategy, privacy)
    bound = minimum_error_bound(workload, privacy)
    print(f"eigen design ({design.method}, {design.completion_rows} completion rows)")
    print(f"in {seconds:.2f}s; expected error {error:.2f} vs lower bound {bound:.2f}")
    print(f"(ratio {error / bound:.3f}).")

    # The sensitivity completion (Program 2, steps 4-5) never hurts expected
    # error, and since the Woodbury/CG machinery it runs beyond the budget
    # too: the completion diagonal is a rank-r correction served by exact
    # eigenbasis solves, or a preconditioned-CG + Hutch++ stochastic trace
    # (knobs in repro.core.error.STOCHASTIC_TRACE) when r is large.
    bare = eigen_design(workload, complete=False)
    bare_error = expected_workload_error(workload, bare.strategy, privacy)
    print(f"\nWithout completion the same design measures {bare_error:.2f} — the")
    print(f"completed strategy is {100 * (bare_error / error - 1):.1f}% better, at identical privacy cost.")
    print("Compare benchmarks/bench_kron_fastpath.py: the factorized")
    print("eigendecomposition beats the dense eigh at n=4096 by three to four")
    print("orders of magnitude, and the completed-design error trace beats the")
    print("dense solve by >=10x (see BENCH_kron_fastpath.json).")

    # Re-evaluating the same strategy (e.g. scanning privacy budgets) is
    # nearly free: the stochastic trace recycles its Hutch++ sketch and
    # Krylov information, so only the first evaluation pays the iteration
    # count.  docs/performance.md documents the knobs.
    start = time.perf_counter()
    expected_workload_error(workload, design.strategy, privacy)
    recycled_seconds = time.perf_counter() - start
    print(f"\nA second error evaluation of the same design takes {recycled_seconds * 1000:.0f} ms")
    print("(Krylov recycling: the re-evaluation runs ~zero PCG iterations).")


if __name__ == "__main__":
    main()
